"""``repro-obs`` — offline analysis of saved run reports.

Usage::

    repro-obs tree r.json                      # span tree with totals
    repro-obs tree r.json --depth 3 --min-wall 0.01
    repro-obs top r.json --by cpu -n 10        # hotspots by wall/cpu
    repro-obs export r.json --format perfetto -o trace.json
    repro-obs export r.json --format collapsed -o stacks.txt
    repro-obs diff baseline.json current.json  # per-span + per-metric deltas

``tree`` and ``top`` read the trace out of a ``repro-bench ... --json``
report; ``export`` converts it to a Perfetto timeline (open at
https://ui.perfetto.dev) or collapsed stacks (``flamegraph.pl`` /
https://speedscope.app); ``diff`` prints every tracked metric's movement
between two reports and exits nonzero on regression (same engine as
``repro-bench compare``, plus the full delta table).

Exit codes: ``0`` success, ``1`` ``diff`` flagged a regression, ``2``
usage errors (unreadable report, bad format).
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.report import RunReport, compare, load_report
from repro.obs.timeline import perfetto_json, to_collapsed

__all__ = ["main"]


class UsageError(Exception):
    """Usage error carrying its message; `main` maps it to exit code 2."""


def _load(path: str) -> RunReport:
    try:
        return load_report(path)
    except (OSError, ValueError) as exc:
        raise UsageError(f"cannot load report {path!r}: {exc}") from None


# ---------------------------------------------------------------------------
# tree — render the span tree with aggregated totals
# ---------------------------------------------------------------------------


def _aggregate_tree(spans: list[dict]) -> dict:
    """Nest spans by name-path, summing repeats.

    Two ``cd.level`` spans under the same ``cd.traversal`` fold into one
    node with ``count=2`` — the totals view, not the timeline view (that
    is what ``export --format perfetto`` is for).
    """
    root: dict = {"children": {}}
    paths: list[dict] = []
    for s in spans:
        parent = s.get("parent", -1)
        bucket = paths[parent] if parent >= 0 else root
        node = bucket["children"].setdefault(
            s["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "children": {}}
        )
        node["count"] += 1
        node["wall_s"] += s["wall_s"]
        node["cpu_s"] += s["cpu_s"]
        paths.append(node)
    return root


def _render_tree(node: dict, *, depth: int, max_depth: int, min_wall: float, out: list):
    children = sorted(
        node["children"].items(), key=lambda kv: kv[1]["wall_s"], reverse=True
    )
    for name, child in children:
        if child["wall_s"] < min_wall:
            continue
        count = f" x{child['count']}" if child["count"] > 1 else ""
        out.append(
            f"{'  ' * depth}{name}{count}  "
            f"wall {child['wall_s']:.3f}s  cpu {child['cpu_s']:.3f}s"
        )
        if depth + 1 < max_depth:
            _render_tree(
                child, depth=depth + 1, max_depth=max_depth, min_wall=min_wall, out=out
            )


def _cmd_tree(args) -> int:
    report = _load(args.report)
    if not report.spans:
        print("(report has no spans — was it written with --json/--trace?)")
        return 0
    lines: list[str] = []
    _render_tree(
        _aggregate_tree(report.spans),
        depth=0,
        max_depth=args.depth,
        min_wall=args.min_wall,
        out=lines,
    )
    print(f"{report.label}: {len(report.spans)} spans")
    print("\n".join(lines))
    return 0


# ---------------------------------------------------------------------------
# top — hotspots by aggregated wall/cpu time
# ---------------------------------------------------------------------------


def _cmd_top(args) -> int:
    report = _load(args.report)
    totals = report.span_totals
    if not totals:
        print("(report has no span totals)")
        return 0
    key = "wall_s" if args.by == "wall" else "cpu_s"
    order = sorted(totals, key=lambda n: totals[n][key], reverse=True)[: args.limit]
    denom = max((totals[n][key] for n in totals), default=0.0)
    width = max((len(n) for n in order), default=4)
    print(f"{report.label}: top {len(order)} spans by {args.by} time")
    for name in order:
        agg = totals[name]
        share = agg[key] / denom if denom else 0.0
        print(
            f"{name:{width}s}  x{agg['count']:<6d} wall {agg['wall_s']:9.3f}s  "
            f"cpu {agg['cpu_s']:9.3f}s  {share:6.1%}"
        )
    return 0


# ---------------------------------------------------------------------------
# export — Perfetto trace-event JSON / collapsed stacks
# ---------------------------------------------------------------------------


def _cmd_export(args) -> int:
    report = _load(args.report)
    if args.format == "perfetto":
        payload = perfetto_json(report, label=report.label or "repro", indent=None)
    else:
        payload = to_collapsed(report)
    if args.output in (None, "-"):
        print(payload)
    else:
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.write("\n")
        except OSError as exc:
            raise UsageError(f"cannot write {args.output!r}: {exc}") from None
        print(f"[{args.format} export written to {args.output}]", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# diff — full per-span/per-metric delta table + regression gate
# ---------------------------------------------------------------------------


def _cmd_diff(args) -> int:
    baseline = _load(args.baseline)
    current = _load(args.current)
    result = compare(
        baseline,
        current,
        time_threshold=args.time_threshold,
        count_threshold=args.count_threshold,
        min_time_delta_s=args.min_time_delta,
    )
    print(f"baseline: {args.baseline} ({baseline.label})")
    print(f"current:  {args.current} ({current.label})")
    flagged = {id(d) for d in result.regressions}
    better = {id(d) for d in result.improvements}
    shown = [
        d
        for d in result.deltas
        if args.all or d.baseline != d.current or id(d) in flagged
    ]
    for d in sorted(shown, key=lambda d: d.metric):
        mark = (
            "REGRESSION " if id(d) in flagged else "improvement" if id(d) in better
            else "           "
        )
        print(f"  {mark} {d.describe()}")
    if not shown:
        print("  (no metric moved)")
    print(result.render())
    return 0 if result.ok else 1


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Analyze repro-bench --json run reports: span trees, "
        "hotspots, Perfetto/flamegraph export, report diffs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tree = sub.add_parser("tree", help="render the span tree with totals")
    p_tree.add_argument("report")
    p_tree.add_argument("--depth", type=int, default=6, help="max tree depth shown")
    p_tree.add_argument(
        "--min-wall", type=float, default=0.0, metavar="SECONDS",
        help="hide aggregated nodes below this wall time",
    )
    p_tree.set_defaults(fn=_cmd_tree)

    p_top = sub.add_parser("top", help="hotspots by aggregated span time")
    p_top.add_argument("report")
    p_top.add_argument("--by", choices=("wall", "cpu"), default="wall")
    p_top.add_argument("-n", "--limit", type=int, default=15)
    p_top.set_defaults(fn=_cmd_top)

    p_exp = sub.add_parser("export", help="export the trace for external viewers")
    p_exp.add_argument("report")
    p_exp.add_argument(
        "--format", choices=("perfetto", "collapsed"), default="perfetto",
        help="perfetto: Chrome trace-event JSON; collapsed: flamegraph stacks",
    )
    p_exp.add_argument(
        "-o", "--output", default=None, help="output path (default stdout)"
    )
    p_exp.set_defaults(fn=_cmd_export)

    p_diff = sub.add_parser("diff", help="per-span and per-metric report deltas")
    p_diff.add_argument("baseline")
    p_diff.add_argument("current")
    p_diff.add_argument("--time-threshold", type=float, default=0.25)
    p_diff.add_argument("--count-threshold", type=float, default=0.01)
    p_diff.add_argument(
        "--min-time-delta", type=float, default=0.01, metavar="SECONDS"
    )
    p_diff.add_argument(
        "--all", action="store_true", help="also show metrics that did not move"
    )
    p_diff.set_defaults(fn=_cmd_diff)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except UsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
