"""Figure 13: octree node counts vs critical-thread checks."""

from repro.bench.experiments import fig13


def test_fig13(benchmark, scale, record):
    result = benchmark.pedantic(fig13, args=(scale,), rounds=1, iterations=1)
    record(result)

    # The critical thread never visits more nodes than the tree stores,
    # and at the largest resolution it visits a strict subset.
    for row in result.rows:
        model, res, nodes, checks, ratio = row
        assert checks <= nodes
    largest = [r for r in result.rows if r[1] == f"{scale.resolutions[-1]}^3"]
    assert all(r[4] < 1.0 for r in largest)

    # Checks grow more slowly than the tree: the ratio at the largest
    # resolution is no worse than ~1.15x the smallest's, per model.
    by_model: dict[str, list] = {}
    for r in result.rows:
        by_model.setdefault(r[0], []).append(r[4])
    for model, ratios in by_model.items():
        assert ratios[-1] <= ratios[0] * 1.15 + 0.05, (model, ratios)
