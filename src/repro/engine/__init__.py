"""The simulated SIMT device — this reproduction's stand-in for the GPUs.

The paper's performance story is carried by two architecture-independent
quantities: the *work* each thread performs (elementary-operation counts
per check type, Section 2/3) and the *schedule* (one thread per
orientation, warps execute in lock step, the slowest thread of the
slowest warp bounds the kernel, Section 4).  This package counts the
former exactly (:mod:`repro.engine.costs`, :mod:`repro.engine.counters`)
and models the latter (:mod:`repro.engine.simt`) for the two Table 2
platforms (:mod:`repro.engine.device`), producing simulated kernel times
that reproduce the paper's figures in shape.

Wall-clock NumPy times are reported separately by the benches; they
measure this Python implementation, not the paper's CUDA kernels.
"""

from repro.engine.device import DeviceSpec, GTX_1080_TI, GTX_1080, DEVICES, scaled_device
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.counters import ThreadCounters, StageBreakdown
from repro.engine.simt import simulate_kernel, simulate_stage
from repro.engine.autotune import TuneRow, tune_memo_levels
from repro.engine.backend import (
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    export_backend_metrics,
    get_backend,
    resolve_backend,
)
from repro.engine.pool import SharedScene, WorkerPool, resolve_workers

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "available_backends",
    "export_backend_metrics",
    "get_backend",
    "resolve_backend",
    "DeviceSpec",
    "scaled_device",
    "TuneRow",
    "tune_memo_levels",
    "SharedScene",
    "WorkerPool",
    "resolve_workers",
    "GTX_1080_TI",
    "GTX_1080",
    "DEVICES",
    "CostModel",
    "DEFAULT_COSTS",
    "ThreadCounters",
    "StageBreakdown",
    "simulate_kernel",
    "simulate_stage",
]
