"""Implicit solids, benchmark models, meshing, and voxelization.

The paper evaluates on four proprietary CAD meshes (Head, Candle
Holder, Turbine, Teapot).  We substitute procedural implicit-surface
analogues with the same bounding dimensions (see DESIGN.md §2): the CD
algorithms only ever see the voxel octree, so what matters is occupancy
structure, which these models emulate (concavities, thin features,
through-holes).

* :mod:`repro.solids.sdf` — signed-distance primitives and CSG with
  *conservative clearance* bounds (what octree construction needs).
* :mod:`repro.solids.models` — the four benchmark analogues.
* :mod:`repro.solids.mesh` — surface-net triangle mesh extraction, so the
  mesh-input path of a CAM pipeline is exercised too.
* :mod:`repro.solids.voxelize` — dense voxelization from SDFs and from
  triangle meshes (parity ray casting).
"""

from repro.solids.sdf import (
    SDF,
    SphereSDF,
    BoxSDF,
    CylinderSDF,
    CapsuleSDF,
    TorusSDF,
    EllipsoidSDF,
    RevolvedPolygonSDF,
    Union,
    Intersection,
    Difference,
    Translate,
    Rotate,
    Scale,
)
from repro.solids.models import (
    BenchmarkModel,
    head_model,
    candle_holder_model,
    turbine_model,
    teapot_model,
    benchmark_models,
)
from repro.solids.voxelize import voxelize_sdf, voxelize_mesh

__all__ = [
    "SDF",
    "SphereSDF",
    "BoxSDF",
    "CylinderSDF",
    "CapsuleSDF",
    "TorusSDF",
    "EllipsoidSDF",
    "RevolvedPolygonSDF",
    "Union",
    "Intersection",
    "Difference",
    "Translate",
    "Rotate",
    "Scale",
    "BenchmarkModel",
    "head_model",
    "candle_holder_model",
    "turbine_model",
    "teapot_model",
    "benchmark_models",
    "voxelize_sdf",
    "voxelize_mesh",
]
