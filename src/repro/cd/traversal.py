"""The shared level-synchronous octree traversal (Algorithm 2, batched).

On the GPU, each thread runs Algorithm 2's explicit-stack DFS over the
octree for its orientation.  The vectorized equivalent used here is a
*frontier*: the set of live (thread, node) pairs, advanced one octree
level at a time.  Per level, the active method classifies every pair
(``NO`` = prune, ``YES`` = the tool provably intersects the node's box,
``EXPAND`` = AICA's inconclusive-but-expandable corner case), and the
frontier is rebuilt:

* ``YES`` on a FULL node -> the thread's orientation collides; all of
  the thread's other pairs are dropped (Algorithm 2's early return);
* ``YES`` on a MIXED node -> the node's stored children join the
  frontier;
* ``EXPAND`` on a FULL interior node -> eight *virtual* FULL sub-cells
  join the frontier (geometric subdivision of a solid region, which the
  stored tree does not materialize).

The traversal visits exactly the nodes the per-thread DFS would visit,
up to within-level ordering after a collision (a sequential thread stops
mid-level; the batched version finishes the level).  Check counts per
thread are recorded in :class:`~repro.engine.counters.ThreadCounters`
and converted to simulated kernel time by :mod:`repro.engine.simt`.

Threads are processed in blocks (GPU thread blocks) so peak frontier
memory stays bounded at any map resolution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cd.result import CDResult
from repro.cd.scene import Scene
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.counters import StageBreakdown, ThreadCounters
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.engine.simt import simulate_kernel, simulate_stage
from repro.geometry.orientation import OrientationGrid
from repro.ica.table import IcaTable, build_ica_table
from repro.obs.metrics import get_metrics
from repro.obs.profile import Heartbeat, progress_enabled
from repro.obs.trace import get_tracer
from repro.octree.linear import STATUS_FULL, STATUS_MIXED

__all__ = ["TraversalConfig", "Runtime", "Wave", "run_cd", "OUT_NO", "OUT_YES", "OUT_EXPAND"]

OUT_NO = np.uint8(0)
OUT_YES = np.uint8(1)
OUT_EXPAND = np.uint8(2)


@dataclass(frozen=True)
class TraversalConfig:
    """Tunable parameters of the parallel scheme.

    ``start_level`` is the paper's top-level expansion (top 5 levels
    collapsed into one 32^3 base level); ``memo_levels`` is the paper's
    ``S`` (stage-1 precompute depth, default 8); ``thread_block`` bounds
    the number of orientations processed per frontier sweep;
    ``max_pairs`` bounds how many (thread, node) pairs a single
    ``method.decide`` call may see — larger frontiers are classified in
    chunks, capping the peak working set of a level (the decision
    kernels allocate a dozen temporaries per pair).

    ``workers`` selects the execution engine: ``1`` is the serial
    reference path, ``N > 1`` shards the workload over ``N`` OS
    processes via :mod:`repro.engine.pool`, and ``None`` (the default)
    defers to the ``REPRO_WORKERS`` environment variable (itself
    defaulting to 1).  Results are byte-identical for any worker count.
    """

    start_level: int = 5
    memo_levels: int = 8
    thread_block: int = 2048
    max_pairs: int = 4_000_000  # frontier chunking threshold inside a block
    workers: int | None = None  # None = resolve from REPRO_WORKERS (default 1)


@dataclass
class Wave:
    """One frontier level's pair arrays, as seen by a method's decide()."""

    level: int
    threads: np.ndarray  # (F,) global thread (orientation) indices
    codes: np.ndarray  # (F,) uint64 Morton codes at `level`
    idx: np.ndarray  # (F,) stored-node index at `level`, -1 if virtual
    status: np.ndarray  # (F,) uint8 node status (virtual nodes are FULL)
    centers: np.ndarray  # (F, 3) node centers
    half: float  # cell half-edge at `level`
    dirs: np.ndarray  # (F, 3) tool direction per pair

    @property
    def size(self) -> int:
        return len(self.threads)


@dataclass
class Runtime:
    """Per-run shared state handed to the methods."""

    scene: Scene
    grid: OrientationGrid
    counters: ThreadCounters
    costs: CostModel
    config: TraversalConfig
    table: IcaTable | None = None
    all_dirs: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.all_dirs is None:
            self.all_dirs = self.grid.directions()


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts: [0..c0), [0..c1), ..."""
    counts = np.asarray(counts, dtype=np.intp)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.intp)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.intp) - starts


def initial_frontier(scene: Scene, start_level: int):
    """Base cells after the top-level expansion.

    Returns ``(level, codes, idx, status)`` where the cells are all
    stored nodes at ``start_level`` plus the virtual leaf-ward expansion
    of any FULL node living above it (a solid region coarser than the
    base level still has to be visible to every thread).
    """
    tree = scene.tree
    L0 = min(start_level, tree.depth)
    codes = [tree.levels[L0].codes]
    idx = [np.arange(tree.levels[L0].n, dtype=np.intp)]
    status = [tree.levels[L0].status]
    for l in range(L0):
        lev = tree.levels[l]
        full = lev.status == STATUS_FULL
        if not full.any():
            continue
        shift = np.uint64(3 * (L0 - l))
        base = lev.codes[full] << shift
        n_sub = 1 << (3 * (L0 - l))
        sub = (base[:, None] + np.arange(n_sub, dtype=np.uint64)).ravel()
        codes.append(sub)
        idx.append(np.full(len(sub), -1, dtype=np.intp))
        status.append(np.full(len(sub), STATUS_FULL, dtype=np.uint8))
    return (
        L0,
        np.concatenate(codes),
        np.concatenate(idx),
        np.concatenate(status),
    )


def _advance(rt: Runtime, wave: Wave, outcomes: np.ndarray, collides: np.ndarray):
    """Apply one level's outcomes; return the next level's frontier arrays.

    Marks collisions, drops pairs of collided threads, and expands the
    surviving YES-on-MIXED / EXPAND pairs (stored children for MIXED,
    virtual FULL octants for FULL interior nodes).
    """
    tree = rt.scene.tree
    level = wave.level

    hit = (outcomes == OUT_YES) & (wave.status == STATUS_FULL)
    if hit.any():
        collides[np.unique(wave.threads[hit])] = True

    live = ~collides[wave.threads]
    grow = ((outcomes == OUT_YES) & (wave.status == STATUS_MIXED)) | (outcomes == OUT_EXPAND)
    grow &= live
    if not grow.any() or level >= tree.depth:
        return (
            np.zeros(0, dtype=wave.threads.dtype),
            np.zeros(0, dtype=np.uint64),
            np.zeros(0, dtype=np.intp),
            np.zeros(0, dtype=np.uint8),
        )

    nxt = tree.levels[level + 1]
    out_threads = []
    out_codes = []
    out_idx = []
    out_status = []

    stored = grow & (wave.status == STATUS_MIXED)
    if stored.any():
        parent_idx = wave.idx[stored]
        lev = tree.levels[level]
        cs = lev.child_start[parent_idx]
        cc = lev.child_count[parent_idx].astype(np.intp)
        child_idx = np.repeat(cs, cc) + _ranges(cc)
        out_threads.append(np.repeat(wave.threads[stored], cc))
        out_codes.append(nxt.codes[child_idx])
        out_idx.append(child_idx)
        out_status.append(nxt.status[child_idx])

    virtual = grow & (wave.status == STATUS_FULL)
    if virtual.any():
        base = wave.codes[virtual] << np.uint64(3)
        sub = (base[:, None] + np.arange(8, dtype=np.uint64)).ravel()
        out_threads.append(np.repeat(wave.threads[virtual], 8))
        out_codes.append(sub)
        out_idx.append(np.full(len(sub), -1, dtype=np.intp))
        out_status.append(np.full(len(sub), STATUS_FULL, dtype=np.uint8))

    return (
        np.concatenate(out_threads),
        np.concatenate(out_codes),
        np.concatenate(out_idx),
        np.concatenate(out_status),
    )


def _subwave(wave: Wave, a: int, b: int) -> Wave:
    """The ``[a:b)`` slice of a wave's pair arrays (views, no copies)."""
    return Wave(
        level=wave.level,
        threads=wave.threads[a:b],
        codes=wave.codes[a:b],
        idx=wave.idx[a:b],
        status=wave.status[a:b],
        centers=wave.centers[a:b],
        half=wave.half,
        dirs=wave.dirs[a:b],
    )


def _decide_chunked(rt: Runtime, method, wave: Wave) -> np.ndarray:
    """``method.decide`` with the frontier split into <= max_pairs chunks.

    Every decision kernel is per-pair pure and charges counters per pair,
    so splitting a level's pair arrays changes neither outcomes nor
    counters — only the peak size of the kernel's temporaries.
    """
    cap = int(rt.config.max_pairs)
    if cap <= 0 or wave.size <= cap:
        return method.decide(rt, wave)
    outcomes = np.empty(wave.size, dtype=np.uint8)
    for a in range(0, wave.size, cap):
        b = min(a + cap, wave.size)
        outcomes[a:b] = method.decide(rt, _subwave(wave, a, b))
    return outcomes


def _traverse_range(
    rt: Runtime,
    method,
    L0: int,
    base_codes: np.ndarray,
    base_idx: np.ndarray,
    base_status: np.ndarray,
    collides: np.ndarray,
    t_start: int,
    t_end: int,
    progress=None,
) -> None:
    """Run the frontier traversal for threads ``[t_start, t_end)``.

    Mutates ``collides`` and ``rt.counters`` for exactly those threads;
    threads are independent (a thread's pairs never read another
    thread's state), so any partition of ``[0, M)`` into ranges produces
    the same totals — the property the worker pool relies on.

    ``progress`` — when given — is called with ``(t0=..., t1=...)``
    after each completed thread-block (the serial path's heartbeat).
    """
    tracer = get_tracer()
    tree = rt.scene.tree
    counters = rt.counters
    M = counters.n_threads
    for t0 in range(t_start, t_end, rt.config.thread_block):
        t1 = min(t0 + rt.config.thread_block, t_end)
        block = np.arange(t0, t1, dtype=np.intp)
        threads = np.repeat(block, len(base_codes))
        codes = np.tile(base_codes, len(block))
        idx = np.tile(base_idx, len(block))
        status = np.tile(base_status, len(block))

        level = L0
        while len(threads):
            with tracer.span("cd.level", level=level, pairs=len(threads)):
                centers = tree.centers_of_codes(level, codes)
                wave = Wave(
                    level=level,
                    threads=threads,
                    codes=codes,
                    idx=idx,
                    status=status,
                    centers=centers,
                    half=tree.cell_half(level),
                    dirs=rt.all_dirs[threads],
                )
                counters.add_threads("nodes_visited", threads, M)
                outcomes = _decide_chunked(rt, method, wave)
                threads, codes, idx, status = _advance(rt, wave, outcomes, collides)
            level += 1
            if level > tree.depth:
                break
        if progress is not None:
            progress(t0=t0, t1=t1)


def _export_run_metrics(
    counters: ThreadCounters,
    table_entries: int,
    cd_s: float,
    pre_s: float,
    wall: float,
) -> None:
    """One CD run's contribution to the ambient metrics registry.

    Shared by the serial path and the pool's parent-side merge so that a
    parallel run exports exactly the counts a serial run would.
    """
    metrics = get_metrics()
    counters.export(metrics, prefix="cd")
    metrics.counter("cd.runs").inc()
    metrics.counter("cd.table_entries").inc(table_entries)
    metrics.counter("cd.sim_cd_s").inc(cd_s)
    metrics.counter("cd.sim_precompute_s").inc(pre_s)
    metrics.counter("cd.wall_s").inc(wall)


def _finalize_run(
    scene: Scene,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec,
    costs: CostModel,
    config: TraversalConfig,
    collides: np.ndarray,
    counters: ThreadCounters,
    table_entries: int,
    run_sp,
    t_wall0: float,
) -> CDResult:
    """SIMT simulation + metrics export + result assembly for one run.

    Runs once per CD run on the (possibly merged) counters, whether the
    traversal executed serially or across a worker pool.
    """
    wall = time.perf_counter() - t_wall0
    cd_s = simulate_kernel(counters.thread_ops(costs), device)
    pre_s = (
        simulate_stage(costs.ica_precompute(scene.n_cylinders), table_entries, device)
        if table_entries
        else 0.0
    )
    run_sp.set(
        colliding=int(collides.sum()),
        total_checks=counters.total_checks,
        table_entries=table_entries,
        sim_cd_s=cd_s,
        sim_precompute_s=pre_s,
    )
    _export_run_metrics(counters, table_entries, cd_s, pre_s, wall)
    return CDResult(
        method=method.name,
        grid=grid,
        collides=collides,
        counters=counters,
        timing=StageBreakdown(ica_precompute_s=pre_s, cd_tests_s=cd_s, wall_s=wall),
        device_name=device.name,
        table_entries=table_entries,
        config=config,
    )


def _check_table(table: IcaTable, scene: Scene, config: TraversalConfig) -> None:
    """Reject a precomputed table that was built for a different problem.

    A mismatched pivot changes the map; a mismatched ``S`` changes the
    memo/fly counter split — either would silently break the byte-for-byte
    equivalence the caller is promised, so both are hard errors.
    """
    if not np.array_equal(np.asarray(table.pivot, dtype=np.float64), scene.pivot):
        raise ValueError(
            f"precomputed ICA table pivot {np.asarray(table.pivot).tolist()} "
            f"does not match scene pivot {scene.pivot.tolist()}"
        )
    expect = int(min(config.memo_levels, scene.tree.depth + 1))
    if table.levels != expect:
        raise ValueError(
            f"precomputed ICA table has S={table.levels}, "
            f"but this run needs S={expect} (config.memo_levels={config.memo_levels})"
        )


def run_cd(
    scene: Scene,
    grid: OrientationGrid,
    method,
    *,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    config: TraversalConfig = TraversalConfig(),
    workers: int | None = None,
    table: IcaTable | None = None,
    shared=None,
) -> CDResult:
    """Generate the accessibility map for ``scene`` with ``method``.

    ``method`` is one of the classes in :mod:`repro.cd.methods`.  Returns
    a :class:`CDResult` whose counters and timing cover both traversal
    stages (the ICA precompute, when the method uses one, and the CD
    tests).

    ``workers`` overrides ``config.workers`` (which itself defaults to
    the ``REPRO_WORKERS`` environment variable, then 1).  With ``N > 1``
    the orientation thread-blocks are sharded over ``N`` processes by
    :mod:`repro.engine.pool`; the map and counters are byte-identical to
    the serial path for every method.

    ``table`` is an optional precomputed stage-1 ICA table for exactly
    this (scene, ``config.memo_levels``) — e.g. loaded with
    :func:`repro.ica.io.load_ica_table` or cached by a scene registry —
    validated against the scene before use.  ``shared`` is an optional
    prebuilt :class:`repro.engine.pool.SharedScene` arena (tree + table)
    consulted only by the parallel path; the caller keeps ownership.
    Both leave results byte-identical; they only skip redundant setup.
    """
    from repro.engine.pool import resolve_workers, run_cd_parallel

    if table is not None and getattr(method, "needs_table", False):
        _check_table(table, scene, config)
    n_workers = resolve_workers(workers if workers is not None else config.workers)
    if n_workers > 1 and grid.size > 1:
        return run_cd_parallel(
            scene, grid, method,
            device=device, costs=costs, config=config, workers=n_workers,
            table=table, shared=shared,
        )

    t_wall0 = time.perf_counter()
    tracer = get_tracer()
    M = grid.size
    counters = ThreadCounters(n_threads=M, n_cyl=scene.n_cylinders)
    rt = Runtime(scene=scene, grid=grid, counters=counters, costs=costs, config=config)

    with tracer.span("cd.run", method=method.name, orientations=M) as run_sp:
        table_entries = 0
        if getattr(method, "needs_table", False):
            rt.table = (
                table
                if table is not None
                else build_ica_table(
                    scene.tree, scene.tool, scene.pivot, levels=config.memo_levels
                )
            )
            table_entries = rt.table.n_entries

        L0, base_codes, base_idx, base_status = initial_frontier(scene, config.start_level)
        collides = np.zeros(M, dtype=bool)

        if progress_enabled():
            n_blocks = -(-M // config.thread_block)
            heartbeat = Heartbeat(n_blocks, "block")
            progress = heartbeat.tick
        else:
            progress = None
        with tracer.span("cd.traversal", start_level=L0):
            _traverse_range(
                rt, method, L0, base_codes, base_idx, base_status, collides, 0, M,
                progress=progress,
            )

        return _finalize_run(
            scene, grid, method,
            device=device, costs=costs, config=config,
            collides=collides, counters=counters, table_entries=table_entries,
            run_sp=run_sp, t_wall0=t_wall0,
        )
