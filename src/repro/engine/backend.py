"""Pluggable array backends for the v2 panel/batch kernels.

Engine v2 reshaped the hot path into per-level *panel* matrices — dense
``(unique node, block thread)`` blocks — which is exactly the shape a
tensor framework or a GPU wants.  This module is the seam that lets
those kernels run on something other than the host NumPy:

* :class:`ArrayBackend` bundles an Array-API-style namespace (``xp``)
  with the staging discipline the kernels rely on — ``to_device`` /
  ``to_host`` enforce float64 + C-contiguity at the boundary and count
  every byte that crosses it — plus capability flags (``has_einsum``)
  and the contraction helpers the kernels need either way.
* :func:`get_backend` resolves a backend *name* to a thread-local
  instance (one per thread, like the ambient :class:`~repro.engine.workspace.Workspace`,
  so per-run counter deltas are race-free).
* :func:`resolve_backend` implements the selection precedence
  ``TraversalConfig.backend`` > ``REPRO_BACKEND`` > ``numpy`` with the
  same normalization rules as :func:`repro.cd.traversal.resolve_engine`
  (both now share :func:`resolve_setting`).

Registered backends:

``numpy``
    The default reference.  ``to_device``/``to_host`` are identity
    pass-throughs (zero copies, zero counted bytes) and the kernels'
    existing einsum paths run untouched, so the numpy backend is
    byte-identical to pre-backend code by construction.
``numpy_portable``
    NumPy arrays driven exclusively through the portable (no-einsum,
    Array-API-only) code paths.  Exists so the portability branches are
    exercised — locally and by pool workers — without installing
    ``array-api-strict``; it is also the bit-equality witness for the
    pairwise contraction order (see below).
``array_api_strict``
    The conformance backend (``pip install array-api-strict``): proves
    the kernels use only portable Array-API operations.  Exercised in
    CI; import-guarded here.
``cupy`` / ``torch``
    GPU-capable backends, used when importable and skipped otherwise.
    Neither is assumed present anywhere in the test suite or CI.

**Tolerance contract.**  The ``numpy`` backend is byte-identical —
maps *and* per-thread counters — and stays gated as such.  Non-numpy
backends relax *float* comparisons to allclose-with-tolerance, but the
**counters stay exact**: every counter is computed from boolean kernel
outcomes (threshold comparisons), never from accumulated floats.

**Accumulation order.**  NumPy's ``einsum`` reduces a 3-long
contraction axis with SSE pairwise partial sums: lanes ``(p0 + p2)``
and ``p1``, combined last — *not* the left-to-right ``(p0 + p1) + p2``.
The portable helpers (:meth:`ArrayBackend.dot3` and friends) replicate
that exact order, so a numpy-backed Array-API namespace (which is what
``array_api_strict`` and ``numpy_portable`` are) produces bit-equal
floats, which in turn keeps the boolean outcomes — and therefore the
counters — bit-equal, the property the conformance gate asserts.
"""

from __future__ import annotations

import os
import threading

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "BACKEND_NAMES",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "resolve_setting",
    "export_backend_metrics",
]

#: Every registrable backend name, in documentation order.  Name
#: validation happens against this tuple (``resolve_backend``);
#: *availability* (is the library importable?) is checked lazily by
#: :func:`get_backend`, which raises :class:`BackendUnavailable`.
BACKEND_NAMES = ("numpy", "numpy_portable", "array_api_strict", "cupy", "torch")


class BackendUnavailable(RuntimeError):
    """A validly-named backend whose library is not importable here."""


def resolve_setting(
    value,
    *,
    env_var: str,
    default: str,
    allowed: tuple,
    field: str,
) -> str:
    """Shared explicit > environment > default resolution with validation.

    Normalization is applied to *both* sources before the fallback
    decision: an explicit value that is empty **or whitespace-only**
    defers to the environment (previously a whitespace-only
    ``TraversalConfig.engine`` slipped past the fallback and failed
    validation).  Errors name both the config field and the env var.
    """
    if value is not None:
        value = str(value).strip().lower()
    if not value:
        value = os.environ.get(env_var, "").strip().lower() or default
    if value not in allowed:
        raise ValueError(
            f"{field} must be one of {allowed}, got {value!r} "
            f"(check {env_var} or TraversalConfig.{field})"
        )
    return value


def resolve_backend(value: str | None = None) -> str:
    """The effective array backend: explicit > ``REPRO_BACKEND`` > ``numpy``.

    Validates the *name* only; whether the backing library is importable
    is decided by :func:`get_backend` at use time.
    """
    return resolve_setting(
        value,
        env_var="REPRO_BACKEND",
        default="numpy",
        allowed=BACKEND_NAMES,
        field="backend",
    )


def _host_staging(x: np.ndarray) -> np.ndarray:
    """The boundary discipline: C-contiguous, floats widened to float64.

    Integer/bool arrays keep their dtype (they index or mask); float
    arrays are pinned to float64 so no backend silently downcasts the
    geometry (the byte-identity analysis assumes double throughout).
    """
    arr = np.asarray(x)
    if arr.dtype.kind == "f" and arr.dtype != np.float64:
        arr = arr.astype(np.float64)
    return np.ascontiguousarray(arr)


class ArrayBackend:
    """One array namespace plus the staging/instrumentation seam.

    Instances are cheap but stateful (monotone lifetime counters, the
    :class:`~repro.engine.workspace.Workspace` pattern); get them from
    :func:`get_backend`, which hands out one per (thread, name).
    """

    __slots__ = (
        "name",
        "xp",
        "is_numpy",
        "has_einsum",
        "kernel_calls",
        "h2d_bytes",
        "d2h_bytes",
        "sync_points",
    )

    def __init__(self, name: str, xp, *, is_numpy: bool, has_einsum: bool):
        self.name = name
        self.xp = xp
        self.is_numpy = is_numpy
        self.has_einsum = has_einsum
        self.kernel_calls = 0
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.sync_points = 0

    # -- staging ----------------------------------------------------------

    def to_device(self, x) -> "object":
        """Stage a host array into this backend's namespace.

        The numpy backend is an identity pass-through (no copy, no
        counted bytes — the engine's arrays already satisfy the
        discipline).  Other backends apply :func:`_host_staging` then
        ``xp.asarray`` and count the transferred bytes.
        """
        if self.is_numpy:
            return x
        arr = _host_staging(x)
        self.h2d_bytes += arr.nbytes
        return self.xp.asarray(arr)

    def to_host(self, x) -> np.ndarray:
        """Materialize a backend array on the host (a sync point)."""
        if self.is_numpy:
            return x
        self.sync_points += 1
        get = getattr(x, "get", None)
        if callable(get):  # cupy-style device arrays
            arr = np.asarray(get())
        else:
            try:
                arr = np.asarray(x)
            except (TypeError, ValueError):
                arr = np.asarray(np.from_dlpack(x))
        self.d2h_bytes += arr.nbytes
        return arr

    def count_kernel(self) -> None:
        """Charge one kernel invocation to the seam's counters."""
        self.kernel_calls += 1

    # -- contractions (the only reductions the panel kernels use) ---------

    def dot3(self, a, b):
        """Row dots over a length-3 trailing axis: ``einsum("...j,...j->...")``.

        The portable branch replicates einsum's pairwise accumulation
        ``(p0 + p2) + p1`` so numpy-backed namespaces stay bit-equal to
        the einsum reference (see the module docstring).
        """
        if self.has_einsum:
            return np.einsum("...j,...j->...", a, b)
        return (a[..., 0] * b[..., 0] + a[..., 2] * b[..., 2]) + a[..., 1] * b[..., 1]

    def outer_dot3(self, u, t):
        """All-pairs dots: ``einsum("uj,tj->ut", u, t)`` for (U,3) x (B,3)."""
        if self.has_einsum:
            return np.einsum("uj,tj->ut", u, t)
        return (
            u[:, 0][:, None] * t[:, 0][None, :]
            + u[:, 2][:, None] * t[:, 2][None, :]
        ) + u[:, 1][:, None] * t[:, 1][None, :]

    def rotate3(self, frames, pts):
        """Frame application: ``einsum("pij,pkj->pki", frames, pts)``.

        ``frames`` is (P, 3, 3) row-vector bases, ``pts`` (P, K, 3);
        returns (P, K, 3) with the same pairwise accumulation order.
        """
        if self.has_einsum:
            return np.einsum("pij,pkj->pki", frames, pts)
        xp = self.xp
        cols = [
            (
                pts[..., 0] * frames[:, None, i, 0]
                + pts[..., 2] * frames[:, None, i, 2]
            )
            + pts[..., 1] * frames[:, None, i, 1]
            for i in range(3)
        ]
        return xp.stack(cols, axis=-1)

    # -- delta accounting --------------------------------------------------

    def stats(self) -> dict:
        """Snapshot of the monotone lifetime counters."""
        return {
            "kernel_calls": self.kernel_calls,
            "h2d_bytes": self.h2d_bytes,
            "d2h_bytes": self.d2h_bytes,
            "sync_points": self.sync_points,
        }

    def stats_since(self, before: dict | None) -> dict:
        """Counter deltas since an earlier :meth:`stats` snapshot."""
        now = self.stats()
        if before:
            for key in now:
                now[key] -= before.get(key, 0)
        return now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayBackend({self.name!r}, kernels={self.kernel_calls}, "
            f"h2d={self.h2d_bytes}B, d2h={self.d2h_bytes}B)"
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _make_numpy() -> ArrayBackend:
    return ArrayBackend("numpy", np, is_numpy=True, has_einsum=True)


def _make_numpy_portable() -> ArrayBackend:
    return ArrayBackend("numpy_portable", np, is_numpy=False, has_einsum=False)


def _make_array_api_strict() -> ArrayBackend:
    try:
        import array_api_strict as xp
    except ImportError as exc:
        raise BackendUnavailable(
            "backend 'array_api_strict' needs the array-api-strict package "
            "(pip install array-api-strict)"
        ) from exc
    return ArrayBackend("array_api_strict", xp, is_numpy=False, has_einsum=False)


def _make_cupy() -> ArrayBackend:
    try:
        import cupy as xp
    except ImportError as exc:
        raise BackendUnavailable(
            "backend 'cupy' needs a CUDA-enabled cupy install"
        ) from exc
    # cupy.einsum exists but is not bit-order-compatible with numpy's;
    # GPU floats are allclose-gated anyway, so take the portable path for
    # one accumulation story across all non-numpy backends.
    return ArrayBackend("cupy", xp, is_numpy=False, has_einsum=False)


def _make_torch() -> ArrayBackend:
    try:
        import torch  # noqa: F401
    except ImportError as exc:
        raise BackendUnavailable("backend 'torch' needs a torch install") from exc
    try:
        # The compat namespace papers over the non-Array-API spellings.
        from array_api_compat import torch as xp
    except ImportError:
        import torch as xp  # best effort: modern torch covers what we use
    return ArrayBackend("torch", xp, is_numpy=False, has_einsum=False)


_FACTORIES = {
    "numpy": _make_numpy,
    "numpy_portable": _make_numpy_portable,
    "array_api_strict": _make_array_api_strict,
    "cupy": _make_cupy,
    "torch": _make_torch,
}

_tls = threading.local()


def get_backend(name: str | None = None) -> ArrayBackend:
    """The thread-local backend instance for ``name`` (resolved first).

    One instance per (thread, name): counters are monotone lifetime
    totals, so concurrent runs on service dispatch threads keep their
    delta accounting exact without locks — the same ownership model as
    the ambient workspace.

    Raises :class:`BackendUnavailable` when the named backend's library
    is not importable in this process.
    """
    name = resolve_backend(name)
    cache = getattr(_tls, "backends", None)
    if cache is None:
        cache = _tls.backends = {}
    backend = cache.get(name)
    if backend is None:
        backend = cache[name] = _FACTORIES[name]()
    return backend


def available_backends() -> tuple[str, ...]:
    """The subset of :data:`BACKEND_NAMES` importable in this process."""
    out = []
    for name in BACKEND_NAMES:
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return tuple(out)


def export_backend_metrics(metrics, stats: dict, prefix: str = "engine.backend") -> None:
    """Fold one run's backend seam stats into a metrics registry.

    ``stats`` is an :meth:`ArrayBackend.stats_since` delta (or a pooled
    aggregate thereof).  All four quantities are per-run event/byte
    counts, so they export as counters.  Pooled runs pass
    ``prefix="engine.pool.backend"`` — their stats sum every worker's
    private seam, a different quantity from the serial run's, so the two
    live in different namespaces (mirroring the workspace metrics).
    """
    metrics.counter(f"{prefix}.kernel_calls").inc(int(stats.get("kernel_calls", 0)))
    metrics.counter(f"{prefix}.h2d_bytes").inc(int(stats.get("h2d_bytes", 0)))
    metrics.counter(f"{prefix}.d2h_bytes").inc(int(stats.get("d2h_bytes", 0)))
    metrics.counter(f"{prefix}.sync_points").inc(int(stats.get("sync_points", 0)))
