"""Reusable buffer arenas for the frontier engine's hot loops.

The v2 frontier engine (:mod:`repro.cd.traversal`) builds every level's
wave arrays — ``threads/codes/idx/status/centers/dirs`` plus the decide
kernels' temporaries — inside a :class:`Workspace`: a named, growable
arena of flat NumPy buffers.  A buffer is requested by name and size
with :meth:`Workspace.take`; the arena hands back a view of a persistent
allocation, growing it geometrically when the request outruns the
capacity.  After the first few levels of the first run every request is
a *reuse hit* and the traversal stops paying allocator and page-fault
cost per level — the dominant fixed overhead of the v1 engine on small
and medium frontiers.

Naming protocol (the only contract callers must respect):

* a name identifies one logical buffer; taking it again returns the
  *same* storage, so data written through an earlier view of that name
  is dead the moment the name is taken again;
* producers that must write a new generation of an array while the old
  generation is still being read (the frontier advance writes level
  ``L+1`` while level ``L``'s arrays are live) use *banked* names — the
  same stem suffixed with the level's parity — so reads and writes never
  share storage.

Workspaces are deliberately dumb: no locking (one workspace per thread —
see :func:`use_workspace`), no lifetime tracking, no zeroing.  Misuse
shows up as wrong *values*, and the engine-equivalence suite compares
v2 against the allocating v1 engine byte-for-byte, which is exactly the
test that catches aliasing bugs.

A workspace can be installed as the *ambient* workspace of the current
thread (:func:`use_workspace` / :func:`set_ambient_workspace`); the
traversal runtime picks it up so long-lived hosts — the query service's
dispatch threads, the worker pool's processes — amortize one arena over
many requests instead of re-growing per call.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "Workspace",
    "get_ambient_workspace",
    "set_ambient_workspace",
    "use_workspace",
    "export_workspace_metrics",
]

#: Geometric growth factor: a buffer that must grow is sized to
#: ``max(request, ceil(GROWTH * old_capacity))`` elements so a slowly
#: expanding frontier triggers O(log) grow events, not O(levels).
GROWTH = 1.5


class Workspace:
    """A named arena of growable, reusable flat NumPy buffers."""

    __slots__ = ("_bufs", "grow_events", "reuse_hits")

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}
        self.grow_events = 0
        self.reuse_hits = 0

    def take(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialized ``shape`` view of the buffer called ``name``.

        ``shape`` is an int or tuple.  The view aliases the persistent
        buffer: it is valid until ``name`` is taken again, and its
        contents are whatever the previous taker left there.  A dtype
        change discards the old buffer (names are expected to keep one
        dtype; the engine's do).
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        n = 1
        for s in shape:
            n *= s
        dtype = np.dtype(dtype)
        buf = self._bufs.get(name)
        if buf is None or buf.dtype != dtype or buf.size < n:
            cap = n
            if buf is not None and buf.dtype == dtype:
                cap = max(n, int(buf.size * GROWTH) + 1)
            self._bufs[name] = buf = np.empty(cap, dtype=dtype)
            self.grow_events += 1
        else:
            self.reuse_hits += 1
        return buf[:n].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all named buffers."""
        return sum(b.nbytes for b in self._bufs.values())

    def stats(self) -> dict:
        """A snapshot of the monotone counters (for delta accounting)."""
        return {
            "bytes_held": self.nbytes,
            "grow_events": self.grow_events,
            "reuse_hits": self.reuse_hits,
        }

    def stats_since(self, before: dict | None) -> dict:
        """Counter deltas since an earlier :meth:`stats` snapshot."""
        now = self.stats()
        if before:
            now["grow_events"] -= before.get("grow_events", 0)
            now["reuse_hits"] -= before.get("reuse_hits", 0)
        return now

    def clear(self) -> None:
        """Drop every buffer (the counters are kept: they are lifetime totals)."""
        self._bufs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workspace({len(self._bufs)} buffers, {self.nbytes} B, "
            f"grow={self.grow_events}, reuse={self.reuse_hits})"
        )


_tls = threading.local()


def get_ambient_workspace() -> Workspace | None:
    """The workspace installed for the current thread, if any."""
    return getattr(_tls, "workspace", None)


def set_ambient_workspace(ws: Workspace | None) -> Workspace | None:
    """Install ``ws`` for the current thread; returns the previous one."""
    prev = get_ambient_workspace()
    _tls.workspace = ws
    return prev


@contextmanager
def use_workspace(ws: Workspace | None) -> Iterator[Workspace | None]:
    """Scoped :func:`set_ambient_workspace` (no-op when ``ws`` is None)."""
    prev = set_ambient_workspace(ws)
    try:
        yield ws
    finally:
        set_ambient_workspace(prev)


def export_workspace_metrics(metrics, stats: dict, prefix: str = "engine.workspace") -> None:
    """Fold one run's workspace stats into a metrics registry.

    ``stats`` is a :meth:`Workspace.stats_since` delta (or a worker
    payload thereof): the grow/reuse deltas accumulate as counters, the
    held bytes report as a gauge (a level, not a rate — the arena
    persists across runs, so summing it would be meaningless).  Pooled
    runs pass ``prefix="engine.pool.workspace"``: their stats aggregate
    every worker's private arena, a different quantity from the serial
    run's single-arena stats, so the two live in different namespaces.
    """
    metrics.gauge(f"{prefix}.bytes_held").set(float(stats.get("bytes_held", 0)))
    metrics.counter(f"{prefix}.grow_events").inc(int(stats.get("grow_events", 0)))
    metrics.counter(f"{prefix}.reuse_hits").inc(int(stats.get("reuse_hits", 0)))
