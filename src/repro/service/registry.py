"""Scene registry: content-addressed scenes with shared setup artifacts.

A CAM service voxelizes a model once and answers many accessibility
queries against it.  The registry is where that "once" lives: a
:class:`~repro.cd.scene.Scene` is registered under its
:meth:`~repro.cd.scene.Scene.content_digest` and every expensive
per-scene artifact — the stage-1 memoized ICA table and the
shared-memory arena the worker pool reads — is built once and reused by
all subsequent queries.

Residency is bounded: an LRU policy caps the number of registered
scenes, and evicting a scene destroys its shared-memory arenas (the
only artifact that outlives the process's heap if leaked).  Tables can
additionally warm-start from disk (``table_dir``) via
:mod:`repro.ica.io`, so even the first query against a re-registered
scene skips the stage-1 recompute.

All methods are thread-safe; the HTTP front end calls them from
concurrent request handlers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.cd.scene import Scene
from repro.ica.io import load_ica_table, save_ica_table
from repro.ica.table import IcaTable, build_ica_table
from repro.obs.metrics import get_metrics

__all__ = ["UnknownSceneError", "SceneRegistry"]


class UnknownSceneError(KeyError):
    """Lookup of a digest that is not (or no longer) registered."""


class _Entry:
    """One resident scene plus its per-(S) derived artifacts."""

    __slots__ = ("scene", "tables", "arenas")

    def __init__(self, scene: Scene) -> None:
        self.scene = scene
        self.tables: dict[int, IcaTable] = {}  # effective S -> table
        # arena key: effective S of the embedded table, or None (tree only)
        self.arenas: dict[int | None, object] = {}

    def destroy_arenas(self) -> None:
        for arena in self.arenas.values():
            arena.destroy()
        self.arenas.clear()


class SceneRegistry:
    """Content-addressed LRU registry of scenes and their setup artifacts."""

    def __init__(self, max_scenes: int = 8, table_dir=None) -> None:
        if max_scenes < 1:
            raise ValueError(f"max_scenes must be >= 1, got {max_scenes}")
        self.max_scenes = int(max_scenes)
        self.table_dir = Path(table_dir) if table_dir is not None else None
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = threading.RLock()

    # -- registration -----------------------------------------------------

    def register(self, scene: Scene) -> str:
        """Register ``scene`` (idempotent); returns its content digest.

        Re-registering an already-resident digest just refreshes its LRU
        position — the existing entry and its artifacts are kept.
        """
        digest = scene.content_digest()
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return digest
            self._entries[digest] = _Entry(scene)
            while len(self._entries) > self.max_scenes:
                _, stale = self._entries.popitem(last=False)
                stale.destroy_arenas()
                get_metrics().counter("service.registry.evictions").inc()
            get_metrics().gauge("service.registry.scenes").set(len(self._entries))
        return digest

    # -- lookup -----------------------------------------------------------

    def get(self, digest: str) -> Scene:
        """The registered scene (refreshes LRU); :class:`UnknownSceneError`
        when the digest is unknown or has been evicted."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise UnknownSceneError(digest)
            self._entries.move_to_end(digest)
            return entry.scene

    def digests(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    # -- derived artifacts ------------------------------------------------

    def _effective_levels(self, scene: Scene, memo_levels: int) -> int:
        return int(min(memo_levels, scene.tree.depth + 1))

    def _table_path(self, digest: str, levels: int) -> Path:
        return self.table_dir / f"ica-{digest[:32]}-S{levels}.npz"

    def get_table(self, digest: str, memo_levels: int) -> IcaTable:
        """The memoized ICA table for (scene, S) — built at most once.

        Resolution order: in-memory cache, then ``table_dir`` warm start
        (validated against the scene's pivot before trust), then a fresh
        :func:`~repro.ica.table.build_ica_table` (persisted to
        ``table_dir`` when one is configured).
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise UnknownSceneError(digest)
            scene = entry.scene
            levels = self._effective_levels(scene, memo_levels)
            table = entry.tables.get(levels)
            if table is not None:
                return table

            if self.table_dir is not None:
                path = self._table_path(digest, levels)
                if path.exists():
                    try:
                        table = load_ica_table(path)
                    except ValueError:
                        table = None
                    if table is not None and (
                        not np.array_equal(table.pivot, scene.pivot)
                        or table.levels != levels
                    ):
                        table = None  # stale or foreign file: rebuild
                    if table is not None:
                        entry.tables[levels] = table
                        get_metrics().counter(
                            "service.registry.table_warm_starts"
                        ).inc()
                        return table

            table = build_ica_table(
                scene.tree, scene.tool, scene.pivot, levels=levels
            )
            entry.tables[levels] = table
            get_metrics().counter("service.registry.table_builds").inc()
            if self.table_dir is not None:
                self.table_dir.mkdir(parents=True, exist_ok=True)
                save_ica_table(table, self._table_path(digest, levels))
            return table

    def get_arena(self, digest: str, memo_levels: int | None = None):
        """A shared-memory arena for the scene's tree — created at most once.

        With ``memo_levels`` the arena also embeds the (cached) ICA table
        for that S, ready for ``run_cd(..., shared=...)`` at any worker
        count; ``None`` gives the tree-only arena path runs use.  The
        registry owns the arena: it is destroyed on eviction or
        :meth:`close`, never by the run that borrows it.
        """
        from repro.engine.pool import SharedScene

        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                raise UnknownSceneError(digest)
            key = (
                None
                if memo_levels is None
                else self._effective_levels(entry.scene, memo_levels)
            )
            arena = entry.arenas.get(key)
            if arena is None:
                table = None if key is None else self.get_table(digest, key)
                arena = SharedScene.create(entry.scene.tree, table)
                entry.arenas[key] = arena
                get_metrics().counter("service.registry.arena_builds").inc()
            return arena

    # -- teardown ---------------------------------------------------------

    def evict(self, digest: str) -> bool:
        """Drop one scene (destroying its arenas); False when absent."""
        with self._lock:
            entry = self._entries.pop(digest, None)
            if entry is None:
                return False
            entry.destroy_arenas()
            get_metrics().counter("service.registry.evictions").inc()
            get_metrics().gauge("service.registry.scenes").set(len(self._entries))
            return True

    def close(self) -> None:
        """Destroy every arena and forget every scene; idempotent."""
        with self._lock:
            for entry in self._entries.values():
                entry.destroy_arenas()
            self._entries.clear()
