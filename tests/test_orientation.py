"""Unit tests for polar orientation grids."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.orientation import (
    OrientationGrid,
    angles_from_direction,
    direction_from_angles,
)


class TestDirectionFromAngles:
    @given(st.floats(0, np.pi), st.floats(0, 2 * np.pi))
    def test_unit_length(self, phi, gamma):
        d = direction_from_angles(phi, gamma)
        assert np.linalg.norm(d) == pytest.approx(1.0, abs=1e-12)

    def test_poles(self):
        np.testing.assert_allclose(direction_from_angles(0.0, 1.23), [0, 0, 1], atol=1e-12)
        np.testing.assert_allclose(
            direction_from_angles(np.pi, 4.56), [0, 0, -1], atol=1e-12
        )

    @given(st.floats(1e-3, np.pi - 1e-3), st.floats(1e-6, 2 * np.pi - 1e-6))
    def test_roundtrip(self, phi, gamma):
        d = direction_from_angles(phi, gamma)
        p2, g2 = angles_from_direction(d)
        assert p2 == pytest.approx(phi, abs=1e-9)
        assert g2 == pytest.approx(gamma, abs=1e-9)

    def test_broadcast(self):
        d = direction_from_angles(np.linspace(0.1, 3.0, 5)[:, None], np.zeros((1, 7)))
        assert d.shape == (5, 7, 3)


class TestOrientationGrid:
    def test_square_constructor(self):
        g = OrientationGrid.square(16)
        assert g.shape == (16, 16)
        assert g.size == 256

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OrientationGrid(0, 4)

    def test_cell_centers_avoid_singularities(self):
        g = OrientationGrid(8, 8)
        assert g.phis().min() > 0.0
        assert g.phis().max() < np.pi

    def test_directions_shape_and_unit(self):
        g = OrientationGrid(5, 9)
        d = g.directions()
        assert d.shape == (45, 3)
        np.testing.assert_allclose(np.linalg.norm(d, axis=1), 1.0, atol=1e-12)

    def test_directions_row_major(self):
        """Thread t = i*n + j must map to (phi_i, gamma_j)."""
        g = OrientationGrid(4, 6)
        d = g.directions()
        expected = direction_from_angles(g.phis()[2], g.gammas()[3])
        np.testing.assert_allclose(d[2 * 6 + 3], expected, atol=1e-14)

    def test_unflatten_roundtrip(self):
        g = OrientationGrid(3, 7)
        vals = np.arange(21)
        m = g.unflatten(vals)
        assert m.shape == (3, 7)
        assert m[1, 2] == 1 * 7 + 2

    def test_unflatten_rejects_bad_length(self):
        with pytest.raises(ValueError):
            OrientationGrid(3, 3).unflatten(np.zeros(8))

    def test_directions_cover_hemispheres(self):
        d = OrientationGrid.square(16).directions()
        assert (d[:, 2] > 0).any() and (d[:, 2] < 0).any()
