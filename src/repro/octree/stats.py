"""Octree statistics for Table 1 of the paper.

Table 1 reports, per model and effective resolution: the number of
octree layers, the total voxel (node) count ``N``, plus mesh statistics.
:func:`octree_stats` computes the measured counterparts from a built
tree so the Table 1 bench can print paper-vs-measured rows.
"""

from __future__ import annotations

import numpy as np

from repro.octree.linear import LinearOctree, STATUS_FULL, STATUS_MIXED

__all__ = ["octree_stats"]


def octree_stats(tree: LinearOctree, *, top_expansion: int = 5) -> dict:
    """Summary statistics of an adaptive octree.

    ``top_expansion`` mirrors the paper's configuration of directly
    expanding the top 5 levels of the octree into one level before
    traversal; the reported ``layers`` is the number of levels a
    traversal then actually visits (the expanded level plus everything
    below it that holds nodes).
    """
    counts = tree.level_counts()
    deepest = max((l for l, c in enumerate(counts) if c > 0), default=0)
    start = min(top_expansion, tree.depth)
    layers = max(deepest - start + 1, 1)
    return {
        "resolution": tree.resolution,
        "depth": tree.depth,
        "total_nodes": tree.total_nodes,
        "level_counts": counts,
        "layers": layers,
        "full_nodes": tree.count_status(STATUS_FULL),
        "mixed_nodes": tree.count_status(STATUS_MIXED),
        "solid_volume": tree.solid_volume(),
        "leaf_full": int((tree.levels[tree.depth].status == STATUS_FULL).sum()),
    }
