"""Vectorized 3D Morton (Z-order) codes.

Linear octree levels are keyed by Morton codes so that the 8 children of
a node with code ``c`` occupy the contiguous code range ``[8c, 8c + 8)``
on the next level — child lookup becomes two ``searchsorted`` calls on a
sorted array, the GPU-friendly access pattern the whole traversal is
built around.

Supports up to 21 bits per axis (63-bit codes), i.e. effective
resolutions up to ``2^21`` per edge — far beyond the paper's 2048.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_encode", "morton_decode", "MAX_BITS"]

MAX_BITS = 21


def _spread(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value 3 apart (bit i -> bit 3i)."""
    x = x.astype(np.uint64)
    x &= np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread`: gather every third bit."""
    x = x.astype(np.uint64)
    x &= np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def morton_encode(i, j, k) -> np.ndarray:
    """Interleave integer grid coordinates ``(i, j, k)`` into Morton codes.

    Axis ``i`` occupies the least significant bit of each 3-bit group, so
    a code's low 3 bits are exactly the child-octant index used by
    :meth:`repro.geometry.aabb.AABB.octant`.
    """
    i = np.asarray(i)
    j = np.asarray(j)
    k = np.asarray(k)
    if np.any(i < 0) or np.any(j < 0) or np.any(k < 0):
        raise ValueError("morton coordinates must be non-negative")
    if max(i.max(initial=0), j.max(initial=0), k.max(initial=0)) >= (1 << MAX_BITS):
        raise ValueError(f"morton coordinates must fit in {MAX_BITS} bits")
    return _spread(i) | (_spread(j) << np.uint64(1)) | (_spread(k) << np.uint64(2))


def morton_decode(code) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode`; returns ``(i, j, k)`` as int64."""
    code = np.asarray(code, dtype=np.uint64)
    i = _compact(code)
    j = _compact(code >> np.uint64(1))
    k = _compact(code >> np.uint64(2))
    return i.astype(np.int64), j.astype(np.int64), k.astype(np.int64)
