"""Voxel-per-thread mapping (Section 4.1 ablation): exactness + pricing."""

import numpy as np
import pytest

from repro.cd import AICA, MICA, PICA, run_cd
from repro.cd.mapping import run_voxel_mapping
from repro.geometry.orientation import OrientationGrid


class TestVoxelMappingExactness:
    @pytest.mark.parametrize("method_cls", [PICA, MICA, AICA])
    def test_identical_maps(self, head_scene, method_cls):
        grid = OrientationGrid.square(6)
        std = run_cd(head_scene, grid, method_cls())
        vox = run_voxel_mapping(head_scene, grid, method_cls())
        np.testing.assert_array_equal(std.collides, vox.collides)

    def test_sphere_scene(self, sphere_scene):
        grid = OrientationGrid.square(8)
        std = run_cd(sphere_scene, grid, MICA())
        vox = run_voxel_mapping(sphere_scene, grid, MICA())
        np.testing.assert_array_equal(std.collides, vox.collides)


class TestVoxelMappingPricing:
    def test_thread_count_is_base_cells(self, head_scene):
        grid = OrientationGrid.square(4)
        vox = run_voxel_mapping(head_scene, grid, MICA())
        from repro.cd.traversal import initial_frontier

        _, codes, _, _ = initial_frontier(head_scene, 5)
        assert vox.n_threads == len(codes)

    def test_no_early_exit_means_more_work(self, head_scene):
        """Without cross-subtree early exit the voxel mapping performs at
        least as much total work as the orientation mapping."""
        from repro.engine.costs import DEFAULT_COSTS

        grid = OrientationGrid.square(6)
        std = run_cd(head_scene, grid, MICA())
        vox = run_voxel_mapping(head_scene, grid, MICA())
        assert vox.thread_ops.sum() >= std.counters.thread_ops(DEFAULT_COSTS).sum()

    def test_imbalance_worse_than_orientation_mapping(self, head_scene):
        from repro.engine.costs import DEFAULT_COSTS

        grid = OrientationGrid.square(6)
        std = run_cd(head_scene, grid, MICA())
        vox = run_voxel_mapping(head_scene, grid, MICA())
        ops_std = std.counters.thread_ops(DEFAULT_COSTS)
        imb_std = ops_std.max() / max(ops_std.mean(), 1.0)
        imb_vox = vox.thread_ops.max() / max(vox.thread_ops.mean(), 1.0)
        assert imb_vox > imb_std

    def test_reduce_stage_positive(self, head_scene):
        vox = run_voxel_mapping(head_scene, OrientationGrid.square(4), MICA())
        assert vox.reduce_seconds > 0
        assert vox.total_seconds >= vox.cd_seconds
