"""Median-split AABB bounding-volume hierarchy over solid boxes.

The BVH is stored in flat arrays (GPU-layout, like the linear octree):
node bounds, child indices (``-1`` for leaves), and for leaves a
``[start, start+count)`` range into a reordered primitive-index array.
Construction is top-down median split on the widest axis of the
centroid bounds — the standard robust default — with an explicit stack
(no recursion limits on deep trees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BVH", "build_bvh", "bvh_from_octree"]


@dataclass
class BVH:
    """Flat-array AABB hierarchy.

    ``node_lo/node_hi``: per-node bounds ``(N, 3)``.  Internal nodes have
    ``left/right >= 0``; leaves have ``left == right == -1`` and own the
    primitive indices ``prim_index[leaf_start : leaf_start + leaf_count]``.
    Primitive ``i`` is the box ``centers[i] +- halves[i]``.
    """

    node_lo: np.ndarray
    node_hi: np.ndarray
    left: np.ndarray
    right: np.ndarray
    leaf_start: np.ndarray
    leaf_count: np.ndarray
    prim_index: np.ndarray
    centers: np.ndarray  # (P, 3) primitive box centers
    halves: np.ndarray  # (P, 3) primitive half extents

    @property
    def n_nodes(self) -> int:
        return len(self.node_lo)

    @property
    def n_primitives(self) -> int:
        return len(self.centers)

    def is_leaf(self, node: int) -> bool:
        return self.left[node] < 0

    def depth(self) -> int:
        """Maximum root-to-leaf depth (iterative)."""
        depth = np.zeros(self.n_nodes, dtype=np.int64)
        order = []  # nodes in topological (parent-first) order: construction emits them so
        stack = [0]
        best = 0
        while stack:
            n = stack.pop()
            best = max(best, int(depth[n]))
            l, r = int(self.left[n]), int(self.right[n])
            if l >= 0:
                depth[l] = depth[r] = depth[n] + 1
                stack.append(l)
                stack.append(r)
        del order
        return best

    def validate(self) -> None:
        """Raise if structural invariants are broken (used by tests)."""
        if self.n_nodes == 0:
            if self.n_primitives:
                raise ValueError("empty tree with primitives")
            return
        seen = np.zeros(self.n_primitives, dtype=bool)
        stack = [0]
        while stack:
            n = stack.pop()
            if np.any(self.node_lo[n] > self.node_hi[n]):
                raise ValueError(f"inverted bounds at node {n}")
            l, r = int(self.left[n]), int(self.right[n])
            if l >= 0:
                for c in (l, r):
                    if np.any(self.node_lo[c] < self.node_lo[n] - 1e-9) or np.any(
                        self.node_hi[c] > self.node_hi[n] + 1e-9
                    ):
                        raise ValueError(f"child {c} escapes parent {n}")
                stack.extend((l, r))
            else:
                s, c = int(self.leaf_start[n]), int(self.leaf_count[n])
                if c <= 0:
                    raise ValueError(f"empty leaf {n}")
                idx = self.prim_index[s : s + c]
                if seen[idx].any():
                    raise ValueError("primitive owned by two leaves")
                seen[idx] = True
                lo = (self.centers[idx] - self.halves[idx]).min(axis=0)
                hi = (self.centers[idx] + self.halves[idx]).max(axis=0)
                if np.any(lo < self.node_lo[n] - 1e-9) or np.any(hi > self.node_hi[n] + 1e-9):
                    raise ValueError(f"leaf {n} bounds do not cover its primitives")
        if not seen.all():
            raise ValueError("some primitives unreachable from the root")


def build_bvh(centers, halves, *, leaf_size: int = 4) -> BVH:
    """Build a BVH over boxes ``centers[i] +- halves[i]``.

    ``halves`` may be ``(P,)`` (cubes) or ``(P, 3)``.  ``leaf_size``
    bounds the primitives per leaf (larger = shallower tree, more exact
    tests per leaf visit).
    """
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2 or centers.shape[1] != 3:
        raise ValueError("centers must be (P, 3)")
    P = len(centers)
    halves = np.asarray(halves, dtype=np.float64)
    if halves.ndim == 1:
        halves = halves[:, None]
    halves = np.broadcast_to(halves, (P, 3)).astype(np.float64)
    if leaf_size < 1:
        raise ValueError("leaf_size must be >= 1")
    if P == 0:
        z = np.zeros((0, 3))
        zi = np.zeros(0, dtype=np.intp)
        return BVH(z, z, zi, zi, zi, zi, zi, centers, halves)

    prim_lo = centers - halves
    prim_hi = centers + halves
    order = np.arange(P, dtype=np.intp)

    node_lo: list[np.ndarray] = []
    node_hi: list[np.ndarray] = []
    left: list[int] = []
    right: list[int] = []
    leaf_start: list[int] = []
    leaf_count: list[int] = []

    def new_node(lo, hi) -> int:
        node_lo.append(lo)
        node_hi.append(hi)
        left.append(-1)
        right.append(-1)
        leaf_start.append(-1)
        leaf_count.append(0)
        return len(node_lo) - 1

    root = new_node(prim_lo.min(axis=0), prim_hi.max(axis=0))
    stack: list[tuple[int, int, int]] = [(root, 0, P)]  # (node, start, end) over `order`
    while stack:
        node, s, e = stack.pop()
        idx = order[s:e]
        if e - s <= leaf_size:
            leaf_start[node] = s
            leaf_count[node] = e - s
            continue
        c = centers[idx]
        spread = c.max(axis=0) - c.min(axis=0)
        axis = int(np.argmax(spread))
        if spread[axis] <= 0.0:
            # All centroids coincide: cannot split meaningfully.
            leaf_start[node] = s
            leaf_count[node] = e - s
            continue
        mid = (e - s) // 2
        part = np.argpartition(c[:, axis], mid)
        order[s:e] = idx[part]
        lidx = order[s : s + mid]
        ridx = order[s + mid : e]
        lnode = new_node(prim_lo[lidx].min(axis=0), prim_hi[lidx].max(axis=0))
        rnode = new_node(prim_lo[ridx].min(axis=0), prim_hi[ridx].max(axis=0))
        left[node] = lnode
        right[node] = rnode
        stack.append((lnode, s, s + mid))
        stack.append((rnode, s + mid, e))

    return BVH(
        node_lo=np.asarray(node_lo),
        node_hi=np.asarray(node_hi),
        left=np.asarray(left, dtype=np.intp),
        right=np.asarray(right, dtype=np.intp),
        leaf_start=np.asarray(leaf_start, dtype=np.intp),
        leaf_count=np.asarray(leaf_count, dtype=np.intp),
        prim_index=order,
        centers=centers,
        halves=halves,
    )


def bvh_from_octree(tree, *, leaf_size: int = 4) -> BVH:
    """A BVH over the octree's FULL cells (identical represented solid)."""
    from repro.octree.linear import STATUS_FULL

    centers_parts = []
    halves_parts = []
    for l, lev in enumerate(tree.levels):
        full = lev.status == STATUS_FULL
        if full.any():
            centers_parts.append(tree.centers(l, np.nonzero(full)[0]))
            halves_parts.append(np.full(int(full.sum()), tree.cell_half(l)))
    if not centers_parts:
        return build_bvh(np.zeros((0, 3)), np.zeros(0), leaf_size=leaf_size)
    return build_bvh(
        np.concatenate(centers_parts), np.concatenate(halves_parts), leaf_size=leaf_size
    )
