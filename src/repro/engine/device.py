"""Device specifications for the simulated SIMT model (Table 2).

The two presets mirror the paper's test platforms.  Note the deliberate
tension between them that Section 5.2 remarks on: the GTX 1080 has a
*higher clock* (1.77 vs 1.68 GHz) but *fewer cores* (2560 vs 3548), so
per-thread latency-bound phases run faster on the 1080 while the
massively parallel ICA precompute runs faster on the 1080 Ti — the
simulated model reproduces exactly that inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "GTX_1080_TI", "GTX_1080", "DEVICES", "scaled_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """A SIMT device: ``cuda_cores`` lanes at ``clock_ghz``, in warps of 32."""

    name: str
    cuda_cores: int
    clock_ghz: float
    warp_size: int = 32
    memory_gb: float = 8.0

    def __post_init__(self) -> None:
        if self.cuda_cores < self.warp_size:
            raise ValueError("device needs at least one warp of cores")
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")

    @property
    def warp_slots(self) -> int:
        """Number of warps the device executes concurrently."""
        return self.cuda_cores // self.warp_size

    @property
    def seconds_per_op(self) -> float:
        """Wall time of one elementary operation on one lane (1 op/cycle)."""
        return 1.0 / (self.clock_ghz * 1e9)


#: The paper's primary platform (Table 2; it quotes 3548 CUDA cores).
GTX_1080_TI = DeviceSpec("GTX 1080 Ti", cuda_cores=3548, clock_ghz=1.68, memory_gb=11.0)

#: The secondary platform.
GTX_1080 = DeviceSpec("GTX 1080", cuda_cores=2560, clock_ghz=1.77, memory_gb=8.0)

DEVICES: dict[str, DeviceSpec] = {d.name: d for d in (GTX_1080_TI, GTX_1080)}


def scaled_device(device: DeviceSpec, divisor: int) -> DeviceSpec:
    """A proportionally smaller device (cores / divisor, same clock).

    Scaled-down benches use this so occupancy effects — the flat region
    of Figure 5/17 below the core count, and its linear region above —
    appear within feasible map resolutions.  ``divisor=1`` is the
    identity.
    """
    if divisor < 1:
        raise ValueError("divisor must be >= 1")
    if divisor == 1:
        return device
    cores = max(device.cuda_cores // divisor, device.warp_size)
    return DeviceSpec(
        name=f"{device.name} /{divisor}",
        cuda_cores=cores,
        clock_ghz=device.clock_ghz,
        warp_size=device.warp_size,
        memory_gb=device.memory_gb,
    )
