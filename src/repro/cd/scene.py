"""The CD problem instance: target octree + tool + pivot point."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.octree.linear import LinearOctree
from repro.tool.tool import Tool

__all__ = ["Scene"]


@dataclass(frozen=True)
class Scene:
    """One collision-detection problem instance (inputs (a)-(c) of §2).

    The orientation set (input (d)) is supplied separately as an
    :class:`repro.geometry.orientation.OrientationGrid` so the same scene
    can be queried at several map resolutions (the Figure 17 sweep).
    """

    tree: LinearOctree
    tool: Tool
    pivot: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "pivot", np.asarray(self.pivot, dtype=np.float64).reshape(3)
        )

    @property
    def n_cylinders(self) -> int:
        return self.tool.n_cylinders

    def with_pivot(self, pivot) -> "Scene":
        """Same target and tool, new pivot (for per-path-point sweeps)."""
        return Scene(self.tree, self.tool, np.asarray(pivot, dtype=np.float64))
