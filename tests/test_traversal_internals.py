"""White-box tests of the frontier traversal machinery."""

import numpy as np
import pytest

from repro.cd.scene import Scene
from repro.cd.traversal import (
    OUT_EXPAND,
    OUT_NO,
    OUT_YES,
    Runtime,
    TraversalConfig,
    Wave,
    _advance,
    _ranges,
    initial_frontier,
)
from repro.engine.costs import DEFAULT_COSTS
from repro.engine.counters import ThreadCounters
from repro.geometry.aabb import AABB
from repro.geometry.orientation import OrientationGrid
from repro.octree.build import build_from_dense, build_from_sdf, expand_top
from repro.octree.linear import STATUS_FULL, STATUS_MIXED
from repro.solids.sdf import SphereSDF
from repro.tool.tool import paper_tool


class TestRanges:
    def test_basic(self):
        np.testing.assert_array_equal(_ranges(np.array([3, 1, 2])), [0, 1, 2, 0, 0, 1])

    def test_empty(self):
        assert _ranges(np.array([], dtype=int)).size == 0

    def test_zeros_mixed(self):
        np.testing.assert_array_equal(_ranges(np.array([0, 2, 0, 1])), [0, 1, 0])


@pytest.fixture(scope="module")
def small_tree():
    dom = AABB((-16, -16, -16), (16, 16, 16))
    return build_from_sdf(SphereSDF((0, 0, 0), 9.0), dom, 16)


class TestInitialFrontier:
    def test_expanded_tree_all_stored(self, small_tree):
        tree = expand_top(small_tree, 3)
        scene = Scene(tree, paper_tool(), np.zeros(3))
        L0, codes, idx, status = initial_frontier(scene, 3)
        assert L0 == 3
        assert (idx >= 0).all(), "expanded trees need no virtual base cells"
        assert len(codes) == tree.levels[3].n

    def test_unexpanded_tree_virtualizes_full(self, small_tree):
        scene = Scene(small_tree, paper_tool(), np.zeros(3))
        L0, codes, idx, status = initial_frontier(scene, 3)
        n_above_full = sum(
            int((small_tree.levels[l].status == STATUS_FULL).sum()) for l in range(3)
        )
        if n_above_full:
            assert (idx < 0).any()
        # every virtual cell is FULL
        assert (status[idx < 0] == STATUS_FULL).all()

    def test_start_beyond_depth_clamps(self, small_tree):
        scene = Scene(small_tree, paper_tool(), np.zeros(3))
        L0, codes, idx, status = initial_frontier(scene, 99)
        assert L0 == small_tree.depth

    def test_codes_unique_per_level(self, small_tree):
        scene = Scene(small_tree, paper_tool(), np.zeros(3))
        _, codes, _, _ = initial_frontier(scene, 4)
        assert len(np.unique(codes)) == len(codes)


class TestAdvance:
    def _runtime(self, tree):
        grid = OrientationGrid.square(2)
        return Runtime(
            scene=Scene(tree, paper_tool(), np.zeros(3)),
            grid=grid,
            counters=ThreadCounters(n_threads=grid.size, n_cyl=4),
            costs=DEFAULT_COSTS,
            config=TraversalConfig(),
        )

    def _wave(self, rt, level, threads, codes, idx, status):
        tree = rt.scene.tree
        return Wave(
            level=level,
            threads=np.asarray(threads, dtype=np.intp),
            codes=np.asarray(codes, dtype=np.uint64),
            idx=np.asarray(idx, dtype=np.intp),
            status=np.asarray(status, dtype=np.uint8),
            centers=tree.centers_of_codes(level, np.asarray(codes, dtype=np.uint64)),
            half=tree.cell_half(level),
            dirs=rt.all_dirs[np.asarray(threads, dtype=np.intp)],
        )

    def test_yes_on_full_marks_collision(self, small_tree):
        rt = self._runtime(small_tree)
        # find a FULL node at some level
        for l, lev in enumerate(small_tree.levels):
            full_idx = np.nonzero(lev.status == STATUS_FULL)[0]
            if len(full_idx):
                break
        wave = self._wave(
            rt, l, [1], [lev.codes[full_idx[0]]], [full_idx[0]], [STATUS_FULL]
        )
        collides = np.zeros(4, dtype=bool)
        out = _advance(rt, wave, np.array([OUT_YES], dtype=np.uint8), collides)
        assert collides[1]
        assert len(out[0]) == 0  # nothing to expand

    def test_yes_on_mixed_expands_stored_children(self, small_tree):
        rt = self._runtime(small_tree)
        l = 2
        lev = small_tree.levels[l]
        mix = np.nonzero(lev.status == STATUS_MIXED)[0][0]
        wave = self._wave(rt, l, [0], [lev.codes[mix]], [mix], [STATUS_MIXED])
        collides = np.zeros(4, dtype=bool)
        threads, codes, idx, status = _advance(
            rt, wave, np.array([OUT_YES], dtype=np.uint8), collides
        )
        assert len(threads) == lev.child_count[mix]
        assert (idx >= 0).all()
        # children codes fall in the parent's code range
        parent = int(lev.codes[mix])
        assert ((codes >> np.uint64(3)) == parent).all()

    def test_expand_on_full_makes_virtual_children(self, small_tree):
        rt = self._runtime(small_tree)
        for l, lev in enumerate(small_tree.levels):
            full_idx = np.nonzero(lev.status == STATUS_FULL)[0]
            if len(full_idx) and l < small_tree.depth:
                break
        wave = self._wave(
            rt, l, [2], [lev.codes[full_idx[0]]], [full_idx[0]], [STATUS_FULL]
        )
        collides = np.zeros(4, dtype=bool)
        threads, codes, idx, status = _advance(
            rt, wave, np.array([OUT_EXPAND], dtype=np.uint8), collides
        )
        assert len(threads) == 8
        assert (idx == -1).all()
        assert (status == STATUS_FULL).all()

    def test_no_prunes(self, small_tree):
        rt = self._runtime(small_tree)
        lev = small_tree.levels[2]
        wave = self._wave(rt, 2, [0], [lev.codes[0]], [0], [lev.status[0]])
        collides = np.zeros(4, dtype=bool)
        out = _advance(rt, wave, np.array([OUT_NO], dtype=np.uint8), collides)
        assert len(out[0]) == 0
        assert not collides.any()

    def test_collided_thread_pairs_dropped(self, small_tree):
        rt = self._runtime(small_tree)
        l = 2
        lev = small_tree.levels[l]
        mix = np.nonzero(lev.status == STATUS_MIXED)[0][0]
        full_levels = [
            (fl, np.nonzero(flev.status == STATUS_FULL)[0])
            for fl, flev in enumerate(small_tree.levels)
        ]
        # same thread: one FULL-YES pair (collides) and one MIXED-YES pair
        wave = self._wave(
            rt,
            l,
            [3, 3],
            [lev.codes[mix], lev.codes[mix]],
            [mix, mix],
            [STATUS_FULL, STATUS_MIXED],  # treat first as solid
        )
        collides = np.zeros(4, dtype=bool)
        threads, *_ = _advance(
            rt, wave, np.array([OUT_YES, OUT_YES], dtype=np.uint8), collides
        )
        assert collides[3]
        assert len(threads) == 0, "pairs of a collided thread must be dropped"
        del full_levels


class TestMaxPairsChunking:
    """``TraversalConfig.max_pairs`` must bound decide() batches without
    changing any result.

    Regression: the field used to be documented but never read — waves
    of any size went to ``method.decide`` in one batch.
    """

    @pytest.fixture(scope="module")
    def scene(self, small_tree):
        tree = expand_top(small_tree, 3)
        return Scene(tree, paper_tool(), np.array([0.0, 0.0, 10.0]))

    @pytest.mark.parametrize("method_name", ["PBoxOpt", "AICA"])
    @pytest.mark.parametrize("cap", [1, 7])
    def test_tiny_cap_identical(self, scene, method_name, cap):
        from repro.cd import run_cd
        from repro.cd.methods import method_by_name

        grid = OrientationGrid.square(4)
        ref = run_cd(scene, grid, method_by_name(method_name))
        capped = run_cd(
            scene, grid, method_by_name(method_name),
            config=TraversalConfig(max_pairs=cap),
        )
        np.testing.assert_array_equal(capped.collides, ref.collides)
        for name in ThreadCounters.COUNTER_FIELDS:
            np.testing.assert_array_equal(
                getattr(capped.counters, name), getattr(ref.counters, name),
                err_msg=name,
            )

    def test_decide_sees_bounded_waves(self, scene):
        """Every decide() batch is at most max_pairs pairs wide."""
        from repro.cd import run_cd
        from repro.cd.methods import method_by_name

        method = method_by_name("AICA")
        sizes = []
        original = method.decide

        def spy(rt, wave):
            sizes.append(wave.size)
            return original(rt, wave)

        method.decide = spy
        # workers=1: the spy lives in this process, not in pool workers
        run_cd(scene, OrientationGrid.square(4), method,
               config=TraversalConfig(max_pairs=16, workers=1))
        assert sizes and max(sizes) <= 16


class TestLeafOnlyTree:
    def test_depth_zero_tree(self):
        """A 1-voxel-deep tree (depth 0) still works end to end."""
        dom = AABB((-1, -1, -1), (1, 1, 1))
        tree = build_from_dense(np.ones((1, 1, 1), dtype=bool), dom)
        from repro.cd import AICA, run_cd

        scene = Scene(tree, paper_tool(), np.array([0.0, 0.0, 1.5]))
        r = run_cd(scene, OrientationGrid.square(4), AICA())
        # pointing the tool down into the unit cube must collide
        assert r.n_colliding > 0
