"""Multi-process parallel execution of CD workloads.

The paper's algorithm is pleasingly parallel on two axes: orientations
(one GPU thread each, independent by construction) and pivots (each
``run_cd`` along a path is a separate problem).  The serial NumPy
substrate already exploits neither across *processes* — this module
does, while guaranteeing byte-identical results:

* :func:`run_cd_parallel` shards one run's orientation thread-blocks
  over a pool of worker processes; each worker traverses its range and
  returns its ``collides`` slice plus a :class:`ThreadCounters`, merged
  in the parent with ``merged_with``.  SIMT simulation, metrics export
  and the run report happen once on the merged result, exactly as the
  serial path would.
* :func:`run_along_path_parallel` shards a path's pivots; each worker
  performs a full serial ``run_cd`` (building its own per-pivot ICA
  table) and ships the result back.

In both modes the octree level arrays — and, for a single sharded run,
the memoized ICA table — live in :mod:`multiprocessing.shared_memory`:
workers attach zero-copy views instead of unpickling the tree per task
(:class:`SharedScene`).  Small inputs (tool, pivot, grid, config) travel
by pickle.

Worker selection: explicit ``workers=`` argument, else
``TraversalConfig.workers``, else the ``REPRO_WORKERS`` environment
variable (``auto`` = CPU count), else 1 — the serial reference path.
Per-worker trace spans are folded into the parent tracer
(:meth:`repro.obs.trace.Tracer.absorb`) so ``repro-bench --json``
reports keep their schema regardless of the worker count.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import replace
from multiprocessing import get_all_start_methods, get_context, shared_memory

import numpy as np

from repro.engine.backend import export_backend_metrics
from repro.engine.workspace import Workspace, export_workspace_metrics, use_workspace
from repro.geometry.aabb import AABB
from repro.ica.table import IcaTable
from repro.obs.context import TraceContext, use_trace_context
from repro.obs.metrics import get_metrics
from repro.obs.profile import Heartbeat, PoolStats, peak_rss_bytes, progress_enabled
from repro.obs.trace import Tracer, get_tracer, use_tracer
from repro.octree.linear import LinearOctree, OctreeLevel

__all__ = [
    "resolve_workers",
    "SharedScene",
    "WorkerPool",
    "get_ambient_pool",
    "set_ambient_pool",
    "use_pool",
    "run_cd_parallel",
    "run_along_path_parallel",
]

_ALIGN = 64  # byte alignment of each array inside the arena


def resolve_workers(value=None) -> int:
    """Normalize a worker-count request to an int ``>= 1``.

    ``None``/``0`` defer to ``REPRO_WORKERS`` (default 1); the string
    ``"auto"`` (either given directly or via the environment) means the
    machine's CPU count.
    """
    if value is None or value == 0:
        value = os.environ.get("REPRO_WORKERS", "").strip() or 1
    if isinstance(value, str):
        if value.lower() == "auto":
            value = os.cpu_count() or 1
        else:
            try:
                value = int(value)
            except ValueError:
                raise ValueError(
                    f"worker count must be an integer or 'auto', got {value!r}"
                ) from None
    value = int(value)
    if value < 0:
        raise ValueError(f"worker count must be >= 0, got {value}")
    return max(1, value)


# ---------------------------------------------------------------------------
# Shared-memory scene arena
# ---------------------------------------------------------------------------


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedScene:
    """Octree level arrays (+ optional ICA table) in one shared block.

    The parent calls :meth:`create`, passes the picklable ``manifest``
    to workers, keeps the instance alive while tasks run, then calls
    :meth:`destroy`.  Workers call :meth:`attach` with the manifest and
    get back ``(tree, table)`` whose arrays are read-only views directly
    into the shared block — no copy, no pickling of the tree.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict):
        self._shm = shm
        self.manifest = manifest

    @classmethod
    def create(cls, tree: LinearOctree, table: IcaTable | None = None) -> "SharedScene":
        specs = []
        payload = []
        offset = 0

        def _add(key: str, arr: np.ndarray) -> None:
            nonlocal offset
            arr = np.ascontiguousarray(arr)
            specs.append(
                {
                    "key": key,
                    "dtype": arr.dtype.str,
                    "shape": tuple(arr.shape),
                    "offset": offset,
                }
            )
            payload.append(arr)
            offset = _aligned(offset + arr.nbytes)

        for l, lev in enumerate(tree.levels):
            _add(f"L{l}.codes", lev.codes)
            _add(f"L{l}.status", lev.status)
            _add(f"L{l}.child_start", lev.child_start)
            _add(f"L{l}.child_count", lev.child_count)
        if table is not None:
            for l in range(len(table.cos1)):
                _add(f"ica.cos1.{l}", table.cos1[l])
                _add(f"ica.cos2.{l}", table.cos2[l])

        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for spec, arr in zip(specs, payload):
            dst = np.frombuffer(
                shm.buf, dtype=np.dtype(spec["dtype"]), count=arr.size,
                offset=spec["offset"],
            ).reshape(spec["shape"])
            dst[...] = arr

        manifest = {
            "shm": shm.name,
            "domain_lo": tuple(float(x) for x in tree.domain.lo),
            "domain_hi": tuple(float(x) for x in tree.domain.hi),
            "depth": tree.depth,
            "arrays": specs,
            "table": None
            if table is None
            else {
                "levels": table.levels,
                "n_levels_stored": len(table.cos1),
                "pivot": tuple(float(x) for x in table.pivot),
                "n_entries": table.n_entries,
            },
        }
        return cls(shm, manifest)

    @staticmethod
    def attach(manifest: dict) -> tuple[LinearOctree, IcaTable | None]:
        """(Worker side) Rebuild the scene as views into the shared block.

        Attachments are cached per block name, so a worker reattaches at
        most once per scene regardless of how many tasks it runs.
        """
        name = manifest["shm"]
        cached = _ATTACHED.get(name)
        if cached is not None:
            return cached[1], cached[2]

        shm = shared_memory.SharedMemory(name=name)
        views: dict[str, np.ndarray] = {}
        for spec in manifest["arrays"]:
            dtype = np.dtype(spec["dtype"])
            count = int(np.prod(spec["shape"], dtype=np.int64))
            arr = np.frombuffer(
                shm.buf, dtype=dtype, count=count, offset=spec["offset"]
            ).reshape(spec["shape"])
            arr.flags.writeable = False
            views[spec["key"]] = arr

        levels = [
            OctreeLevel(
                codes=views[f"L{l}.codes"],
                status=views[f"L{l}.status"],
                child_start=views[f"L{l}.child_start"],
                child_count=views[f"L{l}.child_count"],
            )
            for l in range(manifest["depth"] + 1)
        ]
        tree = LinearOctree(
            AABB(manifest["domain_lo"], manifest["domain_hi"]),
            manifest["depth"],
            levels,
            linked=True,
        )

        table = None
        meta = manifest["table"]
        if meta is not None:
            table = IcaTable(
                pivot=np.asarray(meta["pivot"], dtype=np.float64),
                levels=meta["levels"],
                cos1=[views[f"ica.cos1.{l}"] for l in range(meta["n_levels_stored"])],
                cos2=[views[f"ica.cos2.{l}"] for l in range(meta["n_levels_stored"])],
                n_entries=meta["n_entries"],
            )

        while len(_ATTACHED) >= _ATTACH_CACHE_MAX:
            stale = next(iter(_ATTACHED))
            _ATTACHED.pop(stale)[0].close()
        _ATTACHED[name] = (shm, tree, table)
        return tree, table

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def destroy(self) -> None:
        """Release the block (close + unlink); idempotent."""
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:
            pass


# Worker-side attachment cache: shm name -> (shm, tree, table).  Bounded
# because a long-lived pool may see many scenes; evicting closes the
# stale mapping (the arrays die with the task that used them).
_ATTACHED: dict[str, tuple] = {}
_ATTACH_CACHE_MAX = 8


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


def _start_method() -> str:
    method = os.environ.get("REPRO_POOL_START", "").strip()
    if method:
        return method
    return "fork" if "fork" in get_all_start_methods() else "spawn"


class WorkerPool:
    """A context-managed process pool running this module's task functions.

    Thin wrapper over :class:`concurrent.futures.ProcessPoolExecutor`
    with the repo's start-method policy (``fork`` where available for
    cheap startup, overridable via ``REPRO_POOL_START``).
    """

    def __init__(self, workers: int, *, start_method: str | None = None):
        self.workers = max(1, int(workers))
        ctx = get_context(start_method or _start_method())
        self._executor = ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx)

    def map(self, fn, jobs: list, *, on_done=None) -> list:
        """Submit all jobs, return results in submission order.

        ``on_done(index)`` — when given — is called once per task as it
        completes, in completion order (the progress heartbeat's hook);
        results still come back in submission order.
        """
        futures = [self._executor.submit(fn, job) for job in jobs]
        if on_done is not None:
            index = {f: i for i, f in enumerate(futures)}
            for f in as_completed(futures):
                on_done(index[f])
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


# ---------------------------------------------------------------------------
# Ambient (long-lived) pool
# ---------------------------------------------------------------------------

# By default every parallel run spins up its own WorkerPool and tears it
# down — correct, but per-call process startup is pure overhead for a
# long-lived caller answering many requests (repro.service).  Such a
# caller installs one pool here; run_cd_parallel / run_along_path_parallel
# dispatch onto it instead and never shut it down.
_AMBIENT_POOL: WorkerPool | None = None


def get_ambient_pool() -> WorkerPool | None:
    """The installed long-lived pool, or ``None`` (per-call pools)."""
    return _AMBIENT_POOL


def set_ambient_pool(pool: WorkerPool | None) -> WorkerPool | None:
    """Install ``pool`` as the ambient pool; returns the previous one.

    The caller keeps ownership: the parallel entry points never shut an
    ambient pool down, so install ``None`` and ``shutdown()`` it yourself
    when done.
    """
    global _AMBIENT_POOL
    prev = _AMBIENT_POOL
    _AMBIENT_POOL = pool
    return prev


@contextmanager
def use_pool(pool: WorkerPool | None):
    """Scoped :func:`set_ambient_pool`: reuse ``pool`` for the block."""
    prev = set_ambient_pool(pool)
    try:
        yield pool
    finally:
        set_ambient_pool(prev)


# ---------------------------------------------------------------------------
# Worker task functions (module-level: picklable under any start method)
# ---------------------------------------------------------------------------


# Worker-process-persistent buffer arena: one per worker, reused across
# every task the worker runs so the v2 engine's reuse hits survive task
# boundaries (a fresh arena per task would re-grow every buffer).
_WORKER_WS: Workspace | None = None


def _worker_workspace() -> Workspace:
    global _WORKER_WS
    if _WORKER_WS is None:
        _WORKER_WS = Workspace()
    return _WORKER_WS


def _worker_prologue() -> tuple[int, float]:
    """Per-task worker bookkeeping: progress suppression + start stamps.

    Heartbeat lines belong to the parent (which sees task completions);
    a worker re-entering the serial paths must not also print them, so
    the first task a worker runs turns ``REPRO_PROGRESS`` off for the
    worker's lifetime.  Returns ``(start_ns, perf_t0)``.
    """
    os.environ["REPRO_PROGRESS"] = "0"
    return time.time_ns(), time.perf_counter()


def _cd_block_task(job: dict) -> dict:
    """Traverse orientation range ``[t0, t1)`` of one CD run.

    Returns the range's ``collides`` slice, the per-thread counter
    slices (only this range's entries are nonzero, so slices lose
    nothing), the worker's trace spans when tracing was requested, and
    the telemetry the parent's utilization accounting consumes (pid,
    start stamp, busy seconds, peak RSS, trace epoch).
    """
    from repro.cd.methods import method_by_name
    from repro.cd.scene import Scene
    from repro.cd.traversal import Runtime, _traverse_range, initial_frontier
    from repro.engine.counters import ThreadCounters

    start_ns, busy_t0 = _worker_prologue()
    tree, table = SharedScene.attach(job["manifest"])
    scene = Scene(tree, job["tool"], job["pivot"])
    method = method_by_name(job["method"])
    grid = job["grid"]
    config = job["config"]
    M = grid.size
    t0, t1 = job["t0"], job["t1"]

    tracer = Tracer() if job["trace"] else None
    ws = _worker_workspace()
    ws_before = ws.stats()
    with use_tracer(tracer), use_workspace(ws), \
            use_trace_context(job.get("trace_ctx")):
        counters = ThreadCounters(n_threads=M, n_cyl=scene.n_cylinders)
        rt = Runtime(
            scene=scene,
            grid=grid,
            counters=counters,
            costs=job["costs"],
            config=config,
            table=table if getattr(method, "needs_table", False) else None,
        )
        bk_before = rt.backend.stats()
        L0, base_codes, base_idx, base_status = initial_frontier(
            scene, config.start_level
        )
        collides = np.zeros(M, dtype=bool)
        _traverse_range(
            rt, method, L0, base_codes, base_idx, base_status, collides, t0, t1
        )

    return {
        "t0": t0,
        "t1": t1,
        "collides": collides[t0:t1].copy(),
        "counters": {
            name: getattr(counters, name)[t0:t1].copy()
            for name in ThreadCounters.COUNTER_FIELDS
        },
        "spans": tracer.to_dicts() if tracer is not None else [],
        "epoch_ns": tracer.epoch_ns if tracer is not None else None,
        "pid": os.getpid(),
        "start_ns": start_ns,
        "busy_s": time.perf_counter() - busy_t0,
        "max_rss_bytes": peak_rss_bytes(),
        "workspace": ws.stats_since(ws_before),
        "backend": rt.backend.stats_since(bk_before),
    }


def _pivot_task(job: dict) -> dict:
    """One full serial ``run_cd`` at one pivot of a path run.

    The worker builds its own per-pivot ICA table (exactly as the
    serial path-run does), collects metrics into a throwaway registry
    (the parent re-exports from the returned counters so the ambient
    registry sees each run exactly once), and returns the CDResult.
    """
    from repro.cd.scene import Scene
    from repro.cd.traversal import run_cd
    from repro.obs.metrics import MetricsRegistry, use_metrics

    start_ns, busy_t0 = _worker_prologue()
    tree, _ = SharedScene.attach(job["manifest"])
    scene = Scene(tree, job["tool"], job["pivot"])
    from repro.cd.methods import method_by_name

    method = method_by_name(job["method"])
    tracer = Tracer() if job["trace"] else None
    config = replace(job["config"], workers=1)  # no nested pools
    with use_tracer(tracer), use_metrics(MetricsRegistry()), use_workspace(
        _worker_workspace()
    ), use_trace_context(job.get("trace_ctx")):
        result = run_cd(
            scene, job["grid"], method,
            device=job["device"], costs=job["costs"], config=config,
        )
    return {
        "index": job["index"],
        "result": result,
        "spans": tracer.to_dicts() if tracer is not None else [],
        "epoch_ns": tracer.epoch_ns if tracer is not None else None,
        "pid": os.getpid(),
        "start_ns": start_ns,
        "busy_s": time.perf_counter() - busy_t0,
        "max_rss_bytes": peak_rss_bytes(),
    }


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------


def _block_ranges(M: int, workers: int, thread_block: int) -> list[tuple[int, int]]:
    """Contiguous orientation ranges, one task each.

    The shard is at most one serial thread-block wide (so worker-side
    peak memory matches the serial path) and at least ``ceil(M/workers)``
    narrow (so every worker gets work even when ``M < thread_block``).
    """
    chunk = max(1, min(thread_block, -(-M // workers)))
    return [(a, min(a + chunk, M)) for a in range(0, M, chunk)]


def run_cd_parallel(
    scene, grid, method, *, device, costs, config, workers: int,
    table: IcaTable | None = None, shared: "SharedScene | None" = None,
):
    """One CD run with orientation thread-blocks sharded over a pool.

    Called by :func:`repro.cd.traversal.run_cd` when the resolved worker
    count exceeds 1; produces a byte-identical :class:`CDResult`.

    ``table`` is an optional precomputed stage-1 table for this exact
    (scene, memo_levels) — validated upstream by ``run_cd`` — and
    ``shared`` an optional prebuilt arena already holding the tree (and
    the table, when the method uses one); both let a long-lived caller
    skip the per-request rebuild.  A caller-provided arena is never
    destroyed here, and dispatch goes to the ambient pool
    (:func:`use_pool`) when one is installed.
    """
    from repro.cd.traversal import _finalize_run
    from repro.engine.counters import ThreadCounters
    from repro.ica.table import build_ica_table

    t_wall0 = time.perf_counter()
    tracer = get_tracer()
    M = grid.size
    ranges = _block_ranges(M, workers, config.thread_block)
    n_workers = min(workers, len(ranges))

    with tracer.span(
        "cd.run", method=method.name, orientations=M, workers=n_workers
    ) as run_sp:
        table_entries = 0
        if getattr(method, "needs_table", False):
            if table is None:
                table = build_ica_table(
                    scene.tree, scene.tool, scene.pivot, levels=config.memo_levels
                )
            table_entries = table.n_entries
        else:
            table = None  # never ship a table the method will not read

        own_arena = shared is None
        if own_arena:
            with tracer.span("pool.share") as share_sp:
                shared = SharedScene.create(scene.tree, table)
                share_sp.set(nbytes=shared.nbytes, tasks=len(ranges))

        jobs = [
            {
                "manifest": shared.manifest,
                "tool": scene.tool,
                "pivot": scene.pivot,
                "grid": grid,
                "config": config,
                "costs": costs,
                "method": method.name,
                "t0": a,
                "t1": b,
                "trace": tracer.enabled,
                "trace_ctx": None,  # filled under the traversal span below
            }
            for a, b in ranges
        ]

        collides = np.zeros(M, dtype=bool)
        counters = ThreadCounters(n_threads=M, n_cyl=scene.n_cylinders)
        L0 = min(config.start_level, scene.tree.depth)
        heartbeat = Heartbeat(len(jobs), "block") if progress_enabled() else None
        try:
            with tracer.span("cd.traversal", start_level=L0, workers=n_workers) as tsp:
                if tracer.enabled:
                    # Workers run under the traversal span's identity, so
                    # their spans carry this trace's ID and their roots
                    # link straight to the span they are absorbed under.
                    worker_ctx = TraceContext(
                        trace_id=tsp.trace_id, span_id=tsp.span_id
                    )
                    for job in jobs:
                        job["trace_ctx"] = worker_ctx
                pool_w0 = time.perf_counter()
                stats = PoolStats(n_workers, arena_bytes=shared.nbytes)
                on_done = (lambda i: heartbeat.tick(block=i)) if heartbeat else None
                ambient = get_ambient_pool()
                if ambient is not None:
                    payloads = ambient.map(_cd_block_task, jobs, on_done=on_done)
                else:
                    with WorkerPool(n_workers) as pool:
                        payloads = pool.map(_cd_block_task, jobs, on_done=on_done)
                pool_wall = time.perf_counter() - pool_w0
                # Worker arenas persist per process; report the largest
                # single arena as the held-bytes level and sum the deltas.
                ws_agg = {"bytes_held": 0, "grow_events": 0, "reuse_hits": 0}
                bk_agg = {
                    "kernel_calls": 0, "h2d_bytes": 0, "d2h_bytes": 0,
                    "sync_points": 0,
                }
                for k, payload in enumerate(payloads):
                    a, b = payload["t0"], payload["t1"]
                    collides[a:b] = payload["collides"]
                    part = ThreadCounters(n_threads=M, n_cyl=scene.n_cylinders)
                    for name, values in payload["counters"].items():
                        getattr(part, name)[a:b] = values
                    counters = counters.merged_with(part)
                    wstats = payload.get("workspace")
                    if wstats:
                        ws_agg["bytes_held"] = max(
                            ws_agg["bytes_held"], wstats.get("bytes_held", 0)
                        )
                        ws_agg["grow_events"] += wstats.get("grow_events", 0)
                        ws_agg["reuse_hits"] += wstats.get("reuse_hits", 0)
                    bstats = payload.get("backend")
                    if bstats:
                        for key in bk_agg:
                            bk_agg[key] += bstats.get(key, 0)
                    stats.add_sample(k, payload)
                    if tracer.enabled:
                        tracer.absorb(
                            payload["spans"],
                            parent=tsp.index,
                            attrs={"pool_worker": k, "pool_pid": payload["pid"]},
                            epoch_ns=payload["epoch_ns"],
                        )
                if tracer.enabled:
                    stats.emit_wait_spans(tracer, parent=tsp.index)
                stats.export(get_metrics(), wall_s=pool_wall)
                export_workspace_metrics(
                    get_metrics(), ws_agg, prefix="engine.pool.workspace"
                )
                export_backend_metrics(
                    get_metrics(), bk_agg, prefix="engine.pool.backend"
                )
        finally:
            if own_arena:
                shared.destroy()

        return _finalize_run(
            scene, grid, method,
            device=device, costs=costs, config=config,
            collides=collides, counters=counters, table_entries=table_entries,
            run_sp=run_sp, t_wall0=t_wall0,
        )


def run_along_path_parallel(
    tree, tool, pivots: np.ndarray, grid, method, *, device, costs, config,
    workers: int, shared: "SharedScene | None" = None,
):
    """A path run with pivots sharded over a pool.

    Each worker runs the full serial per-pivot ``run_cd`` against the
    shared tree; the parent reassembles results in path order, re-exports
    each run's metrics, folds worker traces under per-pivot spans, and
    computes the overlap statistics exactly as the serial path does.

    ``shared`` — when given — is a prebuilt arena holding this tree (it
    may also carry an ICA table; pivot workers ignore it since every
    pivot needs its own).  Caller-provided arenas are not destroyed, and
    the ambient pool (:func:`use_pool`) is reused when installed.
    """
    from repro.cd.pathrun import PathRunResult, map_overlap
    from repro.cd.traversal import _export_run_metrics

    tracer = get_tracer()
    n_workers = min(workers, len(pivots))
    own_arena = shared is None
    if own_arena:
        shared = SharedScene.create(tree)
    heartbeat = Heartbeat(len(pivots), "pivot") if progress_enabled() else None
    try:
        with tracer.span(
            "cd.path.pool", pivots=len(pivots), workers=n_workers
        ) as pool_sp:
            pool_sp.set(nbytes=shared.nbytes)
            pool_ctx = (
                TraceContext(trace_id=pool_sp.trace_id, span_id=pool_sp.span_id)
                if tracer.enabled
                else None
            )
            jobs = [
                {
                    "manifest": shared.manifest,
                    "tool": tool,
                    "pivot": np.asarray(p, dtype=np.float64),
                    "grid": grid,
                    "config": config,
                    "costs": costs,
                    "device": device,
                    "method": method.name,
                    "index": i,
                    "trace": tracer.enabled,
                    "trace_ctx": pool_ctx,
                }
                for i, p in enumerate(pivots)
            ]
            pool_w0 = time.perf_counter()
            stats = PoolStats(n_workers, arena_bytes=shared.nbytes)
            on_done = (lambda i: heartbeat.tick(pivot=i)) if heartbeat else None
            ambient = get_ambient_pool()
            if ambient is not None:
                payloads = ambient.map(_pivot_task, jobs, on_done=on_done)
            else:
                with WorkerPool(n_workers) as pool:
                    payloads = pool.map(_pivot_task, jobs, on_done=on_done)
            pool_wall = time.perf_counter() - pool_w0
            for k, payload in enumerate(payloads):
                stats.add_sample(k, payload)
            if tracer.enabled:
                stats.emit_wait_spans(tracer, parent=pool_sp.index)
            stats.export(get_metrics(), wall_s=pool_wall)
    finally:
        if own_arena:
            shared.destroy()

    results = [None] * len(pivots)
    for payload in payloads:
        i = payload["index"]
        result = payload["result"]
        result.config = config  # workers forced serial; report the caller's config
        results[i] = result
        with tracer.span("cd.pivot", index=i) as sp:
            sp.set(colliding=result.n_colliding)
        if tracer.enabled and payload["spans"]:
            tracer.absorb(
                payload["spans"],
                parent=sp.index,
                attrs={"pool_worker": i, "pool_pid": payload["pid"]},
                epoch_ns=payload["epoch_ns"],
            )
            # Re-time the pivot span from the worker's root spans so span
            # totals reflect where the time actually went, and re-base its
            # start to the worker's (epoch-aligned) first root so the
            # timeline shows the pivot where it really ran.
            rec = tracer.records[sp.index]
            roots = [d for d in payload["spans"] if d["parent"] < 0]
            rec.wall_s = sum(d["wall_s"] for d in roots)
            rec.cpu_s = sum(d["cpu_s"] for d in roots)
            if payload["epoch_ns"] is not None:
                shift = (payload["epoch_ns"] - tracer.epoch_ns) / 1e9
                rec.t0 = min(d["t0"] for d in roots) + shift
        _export_run_metrics(
            result.counters,
            result.table_entries,
            result.timing.cd_tests_s,
            result.timing.ica_precompute_s,
            result.timing.wall_s,
        )

    overlaps = np.array(
        [map_overlap(a.collides, b.collides) for a, b in zip(results, results[1:])],
        dtype=np.float64,
    )
    return PathRunResult(
        results=results, pivots=np.asarray(pivots, dtype=np.float64), overlaps=overlaps
    )
