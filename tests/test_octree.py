"""Linear octree: construction equivalence, queries, statistics, expansion."""

import numpy as np
import pytest

from repro.geometry.aabb import AABB
from repro.octree.build import (
    build_from_dense,
    build_from_sdf,
    depth_for_resolution,
    expand_top,
)
from repro.octree.linear import STATUS_FULL, STATUS_MIXED, LinearOctree, OctreeLevel
from repro.octree.stats import octree_stats
from repro.solids.models import benchmark_models
from repro.solids.sdf import BoxSDF, SphereSDF
from repro.solids.voxelize import voxelize_sdf

DOMAIN = AABB((-16, -16, -16), (16, 16, 16))
SPHERE = SphereSDF((1.0, -2.0, 0.5), 9.0)


@pytest.fixture(scope="module")
def sphere_tree():
    return build_from_sdf(SPHERE, DOMAIN, 32)


class TestDepthForResolution:
    def test_powers_of_two(self):
        assert depth_for_resolution(1) == 0
        assert depth_for_resolution(64) == 6
        assert depth_for_resolution(2048) == 11

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            depth_for_resolution(48)


class TestConstructionEquivalence:
    @pytest.mark.parametrize("res", [8, 16, 32])
    def test_sdf_equals_dense_sphere(self, res):
        a = build_from_sdf(SPHERE, DOMAIN, res)
        b = build_from_dense(voxelize_sdf(SPHERE, DOMAIN, res), DOMAIN)
        for la, lb in zip(a.levels, b.levels):
            np.testing.assert_array_equal(la.codes, lb.codes)
            np.testing.assert_array_equal(la.status, lb.status)

    @pytest.mark.parametrize("name", ["head", "candle_holder", "turbine", "teapot"])
    def test_sdf_equals_dense_benchmarks(self, name):
        m = {x.name: x for x in benchmark_models()}[name]
        a = build_from_sdf(m.sdf, m.domain, 32)
        b = build_from_dense(voxelize_sdf(m.sdf, m.domain, 32), m.domain)
        for la, lb in zip(a.levels, b.levels):
            np.testing.assert_array_equal(la.codes, lb.codes)
            np.testing.assert_array_equal(la.status, lb.status)

    def test_leaf_occupancy_roundtrip(self, sphere_tree):
        grid = voxelize_sdf(SPHERE, DOMAIN, 32)
        np.testing.assert_array_equal(sphere_tree.leaf_occupancy(), grid)

    def test_full_domain_collapses_to_root(self):
        grid = np.ones((8, 8, 8), dtype=bool)
        t = build_from_dense(grid, DOMAIN)
        assert t.levels[0].n == 1
        assert t.levels[0].status[0] == STATUS_FULL
        assert all(lev.n == 0 for lev in t.levels[1:])

    def test_empty_domain(self):
        t = build_from_dense(np.zeros((8, 8, 8), dtype=bool), DOMAIN)
        assert t.total_nodes == 0


class TestInvariants:
    def test_mixed_nodes_have_children(self, sphere_tree):
        for l, lev in enumerate(sphere_tree.levels):
            mixed = lev.status == STATUS_MIXED
            assert (lev.child_count[mixed] > 0).all()

    def test_full_nodes_have_no_stored_children(self, sphere_tree):
        for lev in sphere_tree.levels:
            full = lev.status == STATUS_FULL
            assert (lev.child_count[full] == 0).all()

    def test_no_eight_full_sibling_groups(self, sphere_tree):
        """Canonical form: 8 FULL siblings would have merged upward."""
        for l in range(1, sphere_tree.depth + 1):
            lev = sphere_tree.levels[l]
            full = lev.status == STATUS_FULL
            parents, counts = np.unique(
                lev.codes[full] >> np.uint64(3), return_counts=True
            )
            assert (counts < 8).all()

    def test_codes_strictly_increasing(self, sphere_tree):
        for lev in sphere_tree.levels:
            if lev.n > 1:
                assert (np.diff(lev.codes.astype(np.int64)) > 0).all()

    def test_children_within_parent_box(self, sphere_tree):
        t = sphere_tree
        for l in range(t.depth):
            lev = t.levels[l]
            for i in np.nonzero(lev.status == STATUS_MIXED)[0][:20]:
                pbox = t.cell_box(l, int(i))
                for c in range(lev.child_start[i], lev.child_start[i] + lev.child_count[i]):
                    cbox = t.cell_box(l + 1, int(c))
                    assert pbox.contains(cbox.center)

    def test_solid_volume_matches_dense(self, sphere_tree):
        grid = voxelize_sdf(SPHERE, DOMAIN, 32)
        cell = 32.0 / 32
        assert sphere_tree.solid_volume() == pytest.approx(grid.sum() * cell**3, rel=1e-12)

    def test_contains_points_matches_leaves(self, sphere_tree, rng):
        pts = rng.uniform(-16, 16, (500, 3))
        got = sphere_tree.contains_points(pts)
        grid = voxelize_sdf(SPHERE, DOMAIN, 32)
        cell = 32.0 / 32
        ijk = np.clip(((pts + 16.0) / cell).astype(int), 0, 31)
        exp = grid[ijk[:, 2], ijk[:, 1], ijk[:, 0]]
        np.testing.assert_array_equal(got, exp)

    def test_points_outside_domain_empty(self, sphere_tree):
        assert not sphere_tree.contains_points(np.array([[100.0, 0, 0]])).any()


class TestValidation:
    def test_non_cubic_domain_rejected(self):
        with pytest.raises(ValueError):
            LinearOctree(AABB((0, 0, 0), (1, 2, 1)), 0, [])

    def test_level_count_mismatch(self):
        with pytest.raises(ValueError):
            LinearOctree(DOMAIN, 2, [])

    def test_level_array_mismatch(self):
        with pytest.raises(ValueError):
            OctreeLevel(
                codes=np.zeros(2, np.uint64),
                status=np.zeros(1, np.uint8),
                child_start=np.zeros(2, np.intp),
                child_count=np.zeros(2, np.int8),
            )


class TestExpandTop:
    def test_preserves_occupancy(self, sphere_tree):
        for start in (2, 3, 5):
            e = expand_top(sphere_tree, start)
            np.testing.assert_array_equal(
                e.leaf_occupancy(), sphere_tree.leaf_occupancy()
            )

    def test_no_full_above_base(self, sphere_tree):
        e = expand_top(sphere_tree, 4)
        for l in range(4):
            assert not (e.levels[l].status == STATUS_FULL).any()

    def test_base_level_covers_solid(self):
        # one big solid box -> after expansion the base level holds the
        # cells tiling it
        t = build_from_dense(np.ones((16, 16, 16), dtype=bool), DOMAIN)
        e = expand_top(t, 2)
        assert e.levels[2].n == 64
        assert (e.levels[2].status == STATUS_FULL).all()

    def test_start_beyond_depth_clamped(self, sphere_tree):
        e = expand_top(sphere_tree, 99)
        np.testing.assert_array_equal(e.leaf_occupancy(), sphere_tree.leaf_occupancy())

    def test_zero_is_identity(self, sphere_tree):
        assert expand_top(sphere_tree, 0) is sphere_tree


class TestStats:
    def test_stats_fields(self, sphere_tree):
        s = octree_stats(sphere_tree)
        assert s["resolution"] == 32
        assert s["total_nodes"] == sphere_tree.total_nodes
        assert s["full_nodes"] + s["mixed_nodes"] == s["total_nodes"]
        assert s["layers"] >= 1
        assert len(s["level_counts"]) == sphere_tree.depth + 1

    def test_node_counts_grow_with_resolution(self):
        n16 = build_from_sdf(SPHERE, DOMAIN, 16).total_nodes
        n32 = build_from_sdf(SPHERE, DOMAIN, 32).total_nodes
        assert n32 > 2 * n16  # surface-dominated growth ~4x

    def test_box_aligned_is_compact(self):
        """An axis-aligned box aligned to cells needs few nodes."""
        t = build_from_sdf(BoxSDF((0, 0, 0), (8.0, 8.0, 8.0)), DOMAIN, 32)
        # [-8,8]^3 tiles exactly 8 level-2 cells: root + 8 MIXED level-1
        # parents + 8 FULL level-2 cells = 17 nodes, out of 32^3 leaves.
        assert t.total_nodes == 17
