"""Run profiling: pool utilization, memory telemetry, progress heartbeat.

The paper's performance argument rests on *where* the work goes — Fig. 14
is a load-imbalance histogram, and the speedup story is per-thread. This
module gives the multi-process engine the same lens:

* :class:`PoolStats` — per-worker busy/idle accounting over one pool
  dispatch.  The engine feeds it one sample per task (worker pid, busy
  seconds, start stamp, peak RSS) and it exports the
  ``engine.pool.utilization`` and ``engine.pool.imbalance_ratio``
  gauges (max/mean busy time — the paper's Fig. 14 metric, at worker
  granularity), arena/RSS memory gauges, and per-task ``pool.task.wait``
  spans (submit-to-start queue latency) into the parent trace.
* :func:`peak_rss_bytes` / :func:`record_memory_metrics` — peak resident
  set size via ``resource.getrusage``, normalized to bytes.
* :class:`Heartbeat` — opt-in (``REPRO_PROGRESS=1`` or ``repro-bench
  --progress``) structured progress lines with ETA, one per completed
  thread-block or pivot.  Off by default: the disabled cost is one
  attribute check per tick.

Like the rest of ``repro.obs`` this module never imports the engine —
the engine imports *it*.
"""

from __future__ import annotations

import os
import sys
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

__all__ = [
    "peak_rss_bytes",
    "record_memory_metrics",
    "PoolStats",
    "Heartbeat",
    "progress_enabled",
]


# ---------------------------------------------------------------------------
# Memory telemetry
# ---------------------------------------------------------------------------


def peak_rss_bytes() -> int:
    """This process's peak resident set size in bytes (0 if unavailable).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; normalize to
    bytes so gauges compare across platforms.
    """
    if resource is None:
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss if sys.platform == "darwin" else rss * 1024)


def record_memory_metrics(registry, *, prefix: str = "proc") -> None:
    """Set the process-level memory gauges on ``registry``."""
    registry.gauge(f"{prefix}.peak_rss_bytes").set(peak_rss_bytes())


# ---------------------------------------------------------------------------
# Pool utilization accounting
# ---------------------------------------------------------------------------


class PoolStats:
    """Busy/idle accounting for one pool dispatch (one batch of tasks).

    The engine records ``submit_ns`` (wall clock when the batch was
    submitted), adds one sample per completed task from the worker's
    payload, then calls :meth:`export` with the dispatch's elapsed wall
    time and :meth:`emit_wait_spans` against the parent tracer.
    """

    def __init__(self, workers: int, *, arena_bytes: int = 0) -> None:
        self.workers = max(1, int(workers))
        self.arena_bytes = int(arena_bytes)
        self.submit_ns = time.time_ns()
        # one (task_index, pid, busy_s, start_ns, rss_bytes) row per task
        self.samples: list[tuple[int, int, float, int, int]] = []

    def add_sample(self, index: int, payload: dict) -> None:
        """Record one task's worker-side telemetry (tolerates old payloads)."""
        self.samples.append(
            (
                index,
                int(payload.get("pid", 0)),
                float(payload.get("busy_s", 0.0)),
                int(payload.get("start_ns", self.submit_ns)),
                int(payload.get("max_rss_bytes", 0)),
            )
        )

    # -- derived ----------------------------------------------------------

    def busy_by_worker(self) -> dict[int, float]:
        """Total busy seconds per worker pid."""
        busy: dict[int, float] = {}
        for _, pid, busy_s, _, _ in self.samples:
            busy[pid] = busy.get(pid, 0.0) + busy_s
        return busy

    def total_busy_s(self) -> float:
        return sum(b for _, _, b, _, _ in self.samples)

    def utilization(self, wall_s: float) -> float:
        """Fraction of the pool's capacity (workers x wall) spent busy."""
        capacity = self.workers * wall_s
        return self.total_busy_s() / capacity if capacity > 0 else 0.0

    def imbalance_ratio(self) -> float:
        """Max over mean per-worker busy time (Fig. 14's metric, >= 1).

        The mean is over the pool's *worker slots* — a worker that never
        got a task counts as zero busy, which is exactly the imbalance
        the paper's histogram exposes.
        """
        busy = self.busy_by_worker()
        total = self.total_busy_s()
        if not busy or total <= 0:
            return 1.0
        return max(busy.values()) / (total / self.workers)

    def max_worker_rss_bytes(self) -> int:
        return max((r for _, _, _, _, r in self.samples), default=0)

    # -- sinks ------------------------------------------------------------

    def export(self, registry, *, wall_s: float, prefix: str = "engine.pool") -> None:
        """Write the dispatch's gauges into a metrics registry.

        Gauges are last-write-wins: a report that covers several pooled
        dispatches (one per pivot, say) keeps the most recent one, which
        is the regression-tracking behaviour gauges already have.
        """
        registry.gauge(f"{prefix}.workers").set(self.workers)
        registry.gauge(f"{prefix}.tasks").set(len(self.samples))
        registry.gauge(f"{prefix}.wall_s").set(wall_s)
        registry.gauge(f"{prefix}.busy_s").set(self.total_busy_s())
        registry.gauge(f"{prefix}.idle_s").set(
            max(0.0, self.workers * wall_s - self.total_busy_s())
        )
        registry.gauge(f"{prefix}.utilization").set(self.utilization(wall_s))
        registry.gauge(f"{prefix}.imbalance_ratio").set(self.imbalance_ratio())
        registry.gauge(f"{prefix}.arena_bytes").set(self.arena_bytes)
        registry.gauge(f"{prefix}.worker_peak_rss_bytes").set(
            self.max_worker_rss_bytes()
        )
        record_memory_metrics(registry)  # the parent's own peak RSS

    def emit_wait_spans(self, tracer, *, parent: int = -1) -> None:
        """Add one ``pool.task.wait`` span per task to the parent trace.

        The wait is submit-to-start queue latency, placed at the submit
        instant on the parent tracer's epoch; each span carries the task
        index and worker pid so it lands on the worker's timeline track.
        """
        if not getattr(tracer, "enabled", False):
            return
        epoch_ns = getattr(tracer, "epoch_ns", None)
        if epoch_ns is None:
            return
        t0 = (self.submit_ns - epoch_ns) / 1e9
        for index, pid, _, start_ns, _ in self.samples:
            tracer.record_span(
                "pool.task.wait",
                t0=t0,
                wall_s=max(0.0, (start_ns - self.submit_ns) / 1e9),
                parent=parent,
                attrs={"task": index, "pool_worker": index, "pool_pid": pid},
            )


# ---------------------------------------------------------------------------
# Progress heartbeat
# ---------------------------------------------------------------------------

_TRUTHY = {"1", "true", "yes", "on"}


def progress_enabled() -> bool:
    """Whether ``REPRO_PROGRESS`` asks for heartbeat lines."""
    return os.environ.get("REPRO_PROGRESS", "").strip().lower() in _TRUTHY


class Heartbeat:
    """One structured progress line per completed unit, with ETA.

    ``[progress] unit=block done=3/8 elapsed=1.2s eta=2.0s key=val ...``

    Lines go to stderr (results own stdout).  Disabled instances cost
    one attribute check per :meth:`tick`; the enable decision is made at
    construction (``enabled=None`` defers to ``REPRO_PROGRESS``).
    """

    def __init__(
        self,
        total: int,
        unit: str,
        *,
        enabled: bool | None = None,
        stream=None,
    ) -> None:
        self.total = int(total)
        self.unit = unit
        self.enabled = progress_enabled() if enabled is None else bool(enabled)
        self.done = 0
        self._stream = stream
        self._t0 = time.perf_counter()

    def tick(self, **fields) -> None:
        """Mark one unit complete and print the heartbeat line."""
        if not self.enabled:
            return
        self.done += 1
        elapsed = time.perf_counter() - self._t0
        if self.done and elapsed > 0:
            eta = elapsed / self.done * (self.total - self.done)
            eta_s = f"{eta:.1f}"
        else:
            eta_s = "?"
        extras = "".join(f" {k}={v}" for k, v in fields.items())
        print(
            f"[progress] unit={self.unit} done={self.done}/{self.total} "
            f"elapsed={elapsed:.1f}s eta={eta_s}s{extras}",
            file=self._stream or sys.stderr,
            flush=True,
        )
