"""Unit tests for frames and the axis-alignment rotation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.frames import apply_rotation, frame_from_axis, rotation_to_axis
from repro.geometry.orientation import direction_from_angles

angles = st.tuples(st.floats(1e-3, np.pi - 1e-3), st.floats(0, 2 * np.pi))


def _dir(a):
    return direction_from_angles(a[0], a[1])


class TestFrameFromAxis:
    @given(angles)
    def test_orthonormal(self, a):
        F = frame_from_axis(_dir(a))
        np.testing.assert_allclose(F @ F.T, np.eye(3), atol=1e-12)

    @given(angles)
    def test_right_handed(self, a):
        F = frame_from_axis(_dir(a))
        assert np.linalg.det(F) == pytest.approx(1.0, abs=1e-12)

    @given(angles)
    def test_third_row_is_axis(self, a):
        d = _dir(a)
        F = frame_from_axis(d)
        np.testing.assert_allclose(F[2], d, atol=1e-12)

    def test_axis_aligned_inputs(self):
        for axis in np.eye(3):
            F = frame_from_axis(axis)
            np.testing.assert_allclose(F @ F.T, np.eye(3), atol=1e-14)

    def test_batched(self):
        dirs = direction_from_angles(
            np.array([0.3, 1.2, 2.8]), np.array([0.0, 3.0, 5.5])
        )
        F = frame_from_axis(dirs)
        assert F.shape == (3, 3, 3)
        for i in range(3):
            np.testing.assert_allclose(F[i] @ F[i].T, np.eye(3), atol=1e-12)
            np.testing.assert_allclose(F[i, 2], dirs[i], atol=1e-12)


class TestRotationToAxis:
    @given(angles)
    def test_maps_axis_to_z(self, a):
        d = _dir(a)
        R = rotation_to_axis(d)
        np.testing.assert_allclose(apply_rotation(R, d), [0, 0, 1], atol=1e-12)

    @given(angles)
    def test_preserves_lengths(self, a):
        R = rotation_to_axis(_dir(a))
        p = np.array([1.3, -0.7, 2.9])
        assert np.linalg.norm(apply_rotation(R, p)) == pytest.approx(
            np.linalg.norm(p), rel=1e-12
        )

    def test_apply_rotation_batch(self):
        R = rotation_to_axis(np.array([0.0, 0.0, 1.0]))
        pts = np.random.default_rng(0).normal(size=(10, 3))
        out = apply_rotation(R, pts)
        assert out.shape == (10, 3)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(pts, axis=1), rtol=1e-12
        )
