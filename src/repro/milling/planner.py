"""Greedy accessibility-driven roughing (the Figure 1 loop, minimally).

For each path point, in order:

1. query the accessibility map of the *target part* at the pivot
   (:func:`repro.cd.traversal.run_cd` with the configured method — the
   map guarantees the whole tool, shank and holder included, misses the
   final part);
2. optionally erode the map by a safety margin
   (:func:`repro.cd.ammaps.dilate_blocked`);
3. pick the safest orientation (:func:`repro.cd.ammaps.best_orientation`)
   and cut the *stock* with the tool's cutting cylinder there;
4. skip the point if nothing is accessible (a real planner would re-seed
   with a different approach path).

The planner exists to exercise the CD library the way its host
application does — per-pivot maps, margins, orientation choice — and to
give the examples an end-to-end artifact (removed volume, zero gouges).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cd.ammaps import best_orientation, dilate_blocked
from repro.cd.scene import Scene
from repro.cd.traversal import TraversalConfig, run_cd
from repro.geometry.orientation import OrientationGrid, direction_from_angles
from repro.milling.stock import VoxelStock
from repro.tool.tool import Tool

__all__ = ["RoughingReport", "GreedyRougher"]


@dataclass
class RoughingReport:
    """Outcome of one roughing pass."""

    points_total: int = 0
    points_cut: int = 0
    points_skipped: int = 0
    cells_removed: int = 0
    gouged_cells: int = 0
    completion: float = 0.0
    orientations: list = field(default_factory=list)  # (point_idx, phi, gamma)

    def summary(self) -> str:
        return (
            f"cut {self.points_cut}/{self.points_total} points "
            f"(skipped {self.points_skipped}), removed {self.cells_removed} cells, "
            f"gouges {self.gouged_cells}, completion {100 * self.completion:.1f}%"
        )


class GreedyRougher:
    """Greedy per-point roughing driven by accessibility maps."""

    def __init__(
        self,
        tree,
        tool: Tool,
        grid: OrientationGrid,
        method,
        *,
        safety_steps: int = 1,
        config: TraversalConfig = TraversalConfig(),
    ):
        self.tree = tree
        self.tool = tool
        self.grid = grid
        self.method = method
        self.safety_steps = int(safety_steps)
        self.config = config

    def plan_point(self, pivot) -> tuple[float, float] | None:
        """The chosen (phi, gamma) at one pivot, or None if inaccessible."""
        result = run_cd(
            Scene(self.tree, self.tool, pivot), self.grid, self.method, config=self.config
        )
        am = result.accessibility_map
        if self.safety_steps:
            am = dilate_blocked(am, self.safety_steps)
        if not am.any():
            return None
        i, j = best_orientation(am)
        return float(self.grid.phis()[i]), float(self.grid.gammas()[j])

    def run(self, stock: VoxelStock, pivots: np.ndarray) -> RoughingReport:
        """Execute the pass over ``pivots`` (in path order), mutating ``stock``."""
        pivots = np.asarray(pivots, dtype=np.float64)
        report = RoughingReport(points_total=len(pivots))
        for k, pivot in enumerate(pivots):
            choice = self.plan_point(pivot)
            if choice is None:
                report.points_skipped += 1
                continue
            phi, gamma = choice
            d = direction_from_angles(phi, gamma)
            report.cells_removed += stock.cut(self.tool, pivot, d)
            report.points_cut += 1
            report.orientations.append((k, phi, gamma))
        report.gouged_cells = stock.gouged_cells
        report.completion = stock.completion()
        return report
