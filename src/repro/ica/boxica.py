"""Section 6 extension: applying ICA to *bounding boxes*.

The paper closes by arguing ICA generalizes beyond cylinders: a bounding
box (square cross-section ``[-wx, wx] x [-wy, wy]``, axial span
``[z0, z1]``, axis through the pivot) can be sandwiched between two
coaxial cylinders —

* the *inscribed* cylinder, radius ``min(wx, wy)``, entirely inside the
  box, and
* the *circumscribed* cylinder, radius ``hypot(wx, wy)``, containing it

— exactly like a voxel is sandwiched between two spheres (Figure 8).
Each cylinder yields sound cone bounds through the ordinary
:func:`repro.ica.cone.ica_bounds_cos`, and the uncovered gap is the
corner-case band, whose (small) measure this module also estimates so
the Section 6 claim can be benchmarked.
"""

from __future__ import annotations

import numpy as np

from repro.ica.cone import ica_bounds_cos

__all__ = ["box_ica_bounds_cos", "box_corner_fraction"]


def box_ica_bounds_cos(
    z0: float, z1: float, wx: float, wy: float, dist, sphere_r
) -> tuple[np.ndarray, np.ndarray]:
    """Sound cone bounds for a box-shaped tool volume, via 2 cylinders.

    Returns ``(cos_lo, cos_hi)`` with the usual guarantees against the
    *box*: ``cos_angle >= cos_lo`` implies the sphere hits the box (it
    hits the inscribed cylinder); ``cos_angle <= cos_hi`` implies it
    misses the box (it misses the circumscribed cylinder).
    """
    if not (0 < wx and 0 < wy):
        raise ValueError("box half-widths must be positive")
    if z1 <= z0:
        raise ValueError("box needs z1 > z0")
    r_in = min(wx, wy)
    r_out = float(np.hypot(wx, wy))
    lo, _ = ica_bounds_cos(
        np.asarray([z0]), np.asarray([z1]), np.asarray([r_in]), dist, sphere_r
    )
    _, hi = ica_bounds_cos(
        np.asarray([z0]), np.asarray([z1]), np.asarray([r_out]), dist, sphere_r
    )
    return lo, hi


def box_corner_fraction(
    z0: float,
    z1: float,
    wx: float,
    wy: float,
    dist: float,
    sphere_r: float,
    *,
    n_angles: int = 2048,
) -> float:
    """Fraction of polar angles the two-cylinder bounds leave undecided.

    Measured over a uniform grid of ``theta in [0, pi]`` — the analogue
    of the corner-case probability of Figure 9 for the box case, i.e. the
    complement of the Section 6 "efficiency should be very small" claim.
    """
    lo, hi = box_ica_bounds_cos(
        z0, z1, wx, wy, np.asarray([float(dist)]), np.asarray([float(sphere_r)])
    )
    thetas = np.pi * (np.arange(n_angles) + 0.5) / n_angles
    cos_t = np.cos(thetas)
    undecided = (cos_t < lo[0]) & (cos_t > hi[0])
    return float(undecided.mean())
