"""The query service: validated specs, tiered reuse, one compute path.

:class:`Service` turns the repo's one-shot pipeline (``run_cd`` /
``run_along_path``) into a long-lived query server.  A query arrives as
a :class:`QuerySpec` (validated, canonically digested) and is answered
through three reuse tiers, cheapest first:

1. **result cache** (:mod:`repro.service.cache`) — the exact query
   already ran: zero traversals;
2. **coalescing** (:mod:`repro.service.batching`) — the exact query is
   in flight right now: join it, one traversal total;
3. **registry artifacts** (:mod:`repro.service.registry`) — a fresh
   computation, but against a registered scene whose ICA table and
   shared-memory arena already exist — and on a worker-process pool
   that outlives the request (:func:`repro.engine.pool.use_pool`)
   instead of per-call process spin-up.

Every tier preserves the repo's core guarantee: the served map is
byte-identical to a direct ``run_cd``/``run_along_path`` call with the
same inputs, at any worker count and for all five methods.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.cd.ammaps import merge_accessible
from repro.cd.methods import METHODS, method_by_name
from repro.cd.pathrun import run_along_path
from repro.cd.scene import Scene
from repro.cd.traversal import TraversalConfig, run_cd
from repro.engine.workspace import Workspace, use_workspace
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.obs.window import RequestWindow
from repro.service.batching import QueryBroker
from repro.service.cache import ResultCache
from repro.service.registry import SceneRegistry, UnknownSceneError

__all__ = ["QuerySpec", "QueryResult", "Service"]

_METHOD_NAMES = tuple(cls.name for cls in METHODS)
_DEFAULT_CONFIG = TraversalConfig()


def _digest_of(parts: tuple) -> str:
    import hashlib

    h = hashlib.sha256()
    h.update(repr(parts).encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class QuerySpec:
    """One validated accessibility-map query.

    ``pivot`` overrides the registered scene's pivot (a single-point
    re-query); ``pivots`` switches to a path query whose per-pivot maps
    are combined with ``merge`` (see
    :func:`repro.cd.ammaps.merge_accessible`).  ``workers = 0`` defers
    to the service's default worker count.
    """

    scene: str
    grid: tuple[int, int] = (32, 32)
    method: str = "AICA"
    pivot: tuple[float, float, float] | None = None
    pivots: tuple[tuple[float, float, float], ...] | None = None
    merge: str = "intersection"
    workers: int = 0
    start_level: int = _DEFAULT_CONFIG.start_level
    memo_levels: int = _DEFAULT_CONFIG.memo_levels
    thread_block: int = _DEFAULT_CONFIG.thread_block
    max_pairs: int = _DEFAULT_CONFIG.max_pairs

    _FIELDS = (
        "scene", "grid", "method", "pivot", "pivots", "merge", "workers",
        "start_level", "memo_levels", "thread_block", "max_pairs",
    )

    def __post_init__(self) -> None:
        if not self.scene or not isinstance(self.scene, str):
            raise ValueError("spec needs a scene digest string")
        grid = tuple(int(x) for x in self.grid)
        if len(grid) != 2 or grid[0] < 1 or grid[1] < 1:
            raise ValueError(f"grid must be two positive ints, got {self.grid!r}")
        object.__setattr__(self, "grid", grid)
        # Normalize the method to its canonical capitalization so specs
        # differing only in case share one digest (and one cache entry).
        try:
            object.__setattr__(self, "method", method_by_name(self.method).name)
        except KeyError:
            raise ValueError(
                f"unknown method {self.method!r}; choose from {_METHOD_NAMES}"
            ) from None
        if self.pivot is not None:
            p = tuple(float(x) for x in self.pivot)
            if len(p) != 3:
                raise ValueError("pivot must have 3 coordinates")
            object.__setattr__(self, "pivot", p)
        if self.pivots is not None:
            pts = tuple(tuple(float(x) for x in p) for p in self.pivots)
            if not pts or any(len(p) != 3 for p in pts):
                raise ValueError("pivots must be a non-empty list of 3D points")
            object.__setattr__(self, "pivots", pts)
            if self.pivot is not None:
                raise ValueError("give either pivot or pivots, not both")
        if self.merge not in ("intersection", "union"):
            raise ValueError("merge must be 'intersection' or 'union'")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = service default)")
        for name in ("start_level", "memo_levels", "thread_block", "max_pairs"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")

    @classmethod
    def from_dict(cls, d: dict) -> "QuerySpec":
        """Build from a JSON request body; unknown keys are an error."""
        if not isinstance(d, dict):
            raise ValueError("query must be a JSON object")
        unknown = set(d) - set(cls._FIELDS)
        if unknown:
            raise ValueError(
                f"unknown query field(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(cls._FIELDS)})"
            )
        return cls(**{k: d[k] for k in cls._FIELDS if k in d})

    def config(self) -> TraversalConfig:
        return TraversalConfig(
            start_level=self.start_level,
            memo_levels=self.memo_levels,
            thread_block=self.thread_block,
            max_pairs=self.max_pairs,
            workers=1,  # the service resolves workers itself
        )

    def digest(self) -> str:
        """Canonical identity of this query (folds in the scene digest).

        ``workers`` is deliberately excluded: results are byte-identical
        at any worker count, so queries differing only in parallelism
        must share one cache entry and coalesce together.
        """
        return _digest_of((
            "repro.service.query/v1",
            self.scene, self.grid, self.method, self.pivot, self.pivots,
            self.merge, self.start_level, self.memo_levels,
            self.thread_block, self.max_pairs,
        ))

    def to_dict(self) -> dict:
        return {
            "scene": self.scene,
            "grid": list(self.grid),
            "method": self.method,
            "pivot": list(self.pivot) if self.pivot is not None else None,
            "pivots": [list(p) for p in self.pivots] if self.pivots else None,
            "merge": self.merge,
            "workers": self.workers,
            "start_level": self.start_level,
            "memo_levels": self.memo_levels,
            "thread_block": self.thread_block,
            "max_pairs": self.max_pairs,
        }


@dataclass
class QueryResult:
    """One answered query: the payload plus how it was served."""

    payload: dict  # the computed (and cached) result data
    cached: bool  # served from the result cache, zero traversals
    coalesced: bool  # joined an identical in-flight computation
    request_id: str | None = None  # identity of the request this answered

    @property
    def accessible(self) -> np.ndarray:
        """The merged/queried accessibility map, ``(m, n)`` bool."""
        return self.payload["map"]

    @property
    def served(self) -> str:
        """Which tier answered: ``"cache"``/``"coalesced"``/``"computed"``."""
        return "cache" if self.cached else "coalesced" if self.coalesced else "computed"

    def to_dict(self, *, include_map: bool = True) -> dict:
        out = {k: v for k, v in self.payload.items() if k != "map"}
        if include_map:
            out["map"] = self.payload["map"].astype(int).tolist()
        out["cached"] = self.cached
        out["coalesced"] = self.coalesced
        if self.request_id is not None:
            out["request_id"] = self.request_id
        return out


class Service:
    """Long-lived accessibility-map query service (front-end agnostic).

    Thread-safe: :meth:`query` may be called from many request-handler
    threads; computations funnel through the broker's dispatch threads.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        max_scenes: int = 8,
        table_dir=None,
        cache_entries: int = 256,
        cache_bytes: int = 256 * 1024 * 1024,
        max_queue: int = 32,
        dispatch_threads: int = 1,
        retry_after_s: float = 1.0,
    ) -> None:
        from repro.engine.pool import resolve_workers

        self.workers = resolve_workers(workers)
        self.registry = SceneRegistry(max_scenes=max_scenes, table_dir=table_dir)
        self.cache = ResultCache(max_entries=cache_entries, max_bytes=cache_bytes)
        self.broker = QueryBroker(
            dispatch_threads=dispatch_threads,
            max_queue=max_queue,
            retry_after_s=retry_after_s,
        )
        # Rolling request statistics (RPS / error rate / latency
        # quantiles).  The service owns the window; front ends feed it
        # per finished request, so every transport shares one view.
        self.window = RequestWindow()
        self._pools: dict[int, object] = {}
        self._pool_lock = threading.Lock()
        # One reusable frontier-engine arena per dispatch thread: serial
        # computations reuse buffers across requests instead of growing a
        # fresh workspace per query (parallel runs use per-worker arenas).
        self._ws_tls = threading.local()
        self._started = time.perf_counter()
        self._closed = False

    # -- scenes -----------------------------------------------------------

    def register_scene(self, scene: Scene) -> str:
        return self.registry.register(scene)

    # -- queries ----------------------------------------------------------

    def query(
        self,
        spec: QuerySpec,
        *,
        timeout: float | None = None,
        request_id: str | None = None,
    ) -> QueryResult:
        """Answer one query through cache -> coalescing -> computation.

        ``request_id`` is the caller's request identity (the HTTP front
        end passes the ``X-Request-Id`` it honored or minted); it is
        threaded into the broker's queue-wait span, the computation's
        ``service.request`` span, and the returned result, so one ID
        correlates the access-log line, the trace, and the response.

        Raises :class:`~repro.service.batching.Backpressure` when the
        dispatch queue is full, :class:`UnknownSceneError` for an
        unregistered scene digest.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        # Fail unknown scenes fast, before burning a queue slot.
        self.registry.get(spec.scene)
        key = spec.digest()
        payload = self.cache.get(key)
        if payload is not None:
            self._count_request(served="cache")
            return QueryResult(
                payload=payload, cached=True, coalesced=False, request_id=request_id
            )
        future, coalesced = self.broker.submit(
            key, lambda: self._compute(spec, key, request_id), request_id=request_id
        )
        payload = future.result(timeout=timeout)
        self._count_request(served="coalesced" if coalesced else "computed")
        return QueryResult(
            payload=payload, cached=False, coalesced=coalesced, request_id=request_id
        )

    def _count_request(self, served: str) -> None:
        metrics = get_metrics()
        metrics.counter("service.requests").inc()
        metrics.counter(f"service.requests.{served}").inc()

    def _thread_workspace(self) -> Workspace:
        ws = getattr(self._ws_tls, "workspace", None)
        if ws is None:
            ws = self._ws_tls.workspace = Workspace()
        return ws

    def _get_pool(self, workers: int):
        from repro.engine.pool import WorkerPool

        with self._pool_lock:
            pool = self._pools.get(workers)
            if pool is None:
                pool = self._pools[workers] = WorkerPool(workers)
            return pool

    def _compute(self, spec: QuerySpec, key: str, request_id: str | None = None) -> dict:
        """Run the actual CD work for one admitted query (broker thread).

        Writes the result cache *before returning* — the broker retires
        the in-flight key right after, and the cache must already hold
        the result by then (no coalesce-nor-cache window).
        """
        from repro.engine.pool import use_pool
        from repro.geometry.orientation import OrientationGrid

        tracer = get_tracer()
        t0 = time.perf_counter()
        scene = self.registry.get(spec.scene)
        if spec.pivot is not None:
            # A pivot override is a different problem instance; register
            # the derived scene (same tree/tool objects, so this is
            # cheap) to give its ICA table and arena a cached home.
            scene = scene.with_pivot(spec.pivot)
            digest = self.registry.register(scene)
        else:
            digest = spec.scene

        grid = OrientationGrid(*spec.grid)
        method = method_by_name(spec.method)
        config = spec.config()
        workers = spec.workers or self.workers
        parallel = workers > 1

        if spec.pivots is not None:
            arena = self.registry.get_arena(digest) if parallel else None
            with use_pool(self._get_pool(workers) if parallel else None), \
                    use_workspace(self._thread_workspace()):
                pr = run_along_path(
                    scene.tree, scene.tool, np.asarray(spec.pivots), grid, method,
                    config=config, workers=workers, shared=arena,
                )
            merged = merge_accessible(
                [r.accessibility_map for r in pr.results], spec.merge
            )
            payload = {
                "map": merged,
                "kind": "path",
                "scene": digest,
                "method": method.name,
                "shape": list(grid.shape),
                "merge": spec.merge,
                "n_accessible": int(merged.sum()),
                "n_colliding": int(merged.size - merged.sum()),
                "mean_overlap": pr.mean_overlap,
                "per_pivot_accessible": [r.n_accessible for r in pr.results],
            }
        else:
            needs_table = getattr(method, "needs_table", False)
            table = (
                self.registry.get_table(digest, config.memo_levels)
                if needs_table
                else None
            )
            arena = (
                self.registry.get_arena(
                    digest, config.memo_levels if needs_table else None
                )
                if parallel
                else None
            )
            with use_pool(self._get_pool(workers) if parallel else None), \
                    use_workspace(self._thread_workspace()):
                r = run_cd(
                    scene, grid, method,
                    config=config, workers=workers, table=table, shared=arena,
                )
            payload = {
                "map": r.accessibility_map,
                "kind": "cd",
                "scene": digest,
                "method": method.name,
                "shape": list(grid.shape),
                "n_accessible": r.n_accessible,
                "n_colliding": r.n_colliding,
                "summary": r.summary(),
            }

        elapsed = time.perf_counter() - t0
        payload["elapsed_s"] = elapsed
        get_metrics().histogram("service.request.ms").observe(elapsed * 1e3)
        if tracer.enabled:
            # record_span, not span(): broker threads must not touch the
            # tracer's nesting stack, which belongs to whoever owns it.
            attrs = {
                "method": method.name,
                "kind": payload["kind"],
                "scene": digest[:12],
                "orientations": grid.size,
                "workers": workers,
            }
            if request_id is not None:
                # The ID of the request that *initiated* the computation;
                # coalesced joiners share this span (and this ID ties it
                # back to that request's access-log line).
                attrs["request_id"] = request_id
            tracer.record_span(
                "service.request",
                t0=tracer.now() - elapsed,
                wall_s=elapsed,
                attrs=attrs,
            )
        self.cache.put(key, payload, nbytes=payload["map"].nbytes + 512)
        return payload

    # -- lifecycle --------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.perf_counter() - self._started

    def close(self) -> None:
        """Drain dispatch, shut worker pools, destroy arenas; idempotent."""
        if self._closed:
            return
        self._closed = True
        self.broker.shutdown()
        with self._pool_lock:
            for pool in self._pools.values():
                pool.shutdown()
            self._pools.clear()
        self.registry.close()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
