#!/usr/bin/env python
"""5-axis milling accessibility along a tool path (the paper's workload).

This is the paper's own scenario end to end: the *head* benchmark is
voxelized at high resolution, a 1 mm offset path is generated around it
(Section 5.1), pivots are sampled from the path, and an accessibility
map is computed at each pivot with AICA — exactly what a CAM planner
like SculptPrint does to decide from which directions the cutter may
approach each contact point.

The script prints per-pivot maps, the aggregate accessibility
statistics a path planner would consume, and the method-comparison
table for one pivot (all five methods must agree bit-for-bit).

Run:  python examples/milling_accessibility.py [resolution] [map_size]
"""

import sys

import numpy as np

from repro import (
    AICA,
    MICA,
    OrientationGrid,
    PBox,
    PBoxOpt,
    PICA,
    Scene,
    build_from_sdf,
    expand_top,
    offset_path,
    paper_tool,
    run_cd,
    sample_pivots,
)
from repro.solids import head_model

def main() -> None:
    resolution = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    map_size = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    n_pivots = 4

    model = head_model()
    print(f"model: {model.name}, dims {model.dims} mm")

    tree = expand_top(build_from_sdf(model.sdf, model.domain, resolution))
    print(f"octree: {tree.total_nodes} nodes at {resolution}^3 effective resolution")

    path = offset_path(model, resolution)
    pivots = sample_pivots(path, n_pivots, seed=7)
    print(f"path: {len(path)} points at 1 mm offset; sampled {n_pivots} pivots\n")

    tool = paper_tool()
    grid = OrientationGrid.square(map_size)

    # -- accessibility along the path --------------------------------------
    total_accessible = []
    for i, pivot in enumerate(pivots):
        result = run_cd(Scene(tree, tool, pivot), grid, AICA())
        frac = result.n_accessible / grid.size
        total_accessible.append(frac)
        print(f"pivot {i} @ ({pivot[0]:6.1f}, {pivot[1]:6.1f}, {pivot[2]:6.1f}) mm "
              f"-> {100 * frac:5.1f}% accessible, "
              f"sim {result.timing.total_s * 1e3:.3f} ms")
        print(result.render_ascii())
        print()

    print(f"mean accessibility along path: {100 * np.mean(total_accessible):.1f}%")
    print("(a planner rejects contact points whose map is all-black and\n"
          " picks orientations from the white region of the rest)\n")

    # -- all five methods on one pivot must produce the same map -----------
    scene = Scene(tree, tool, pivots[0])
    print(f"{'method':8s} {'box checks':>11s} {'ICA eff':>8s} {'sim ms':>9s}")
    reference = None
    for method in (PBox(), PBoxOpt(), PICA(), MICA(), AICA()):
        r = run_cd(scene, grid, method)
        s = r.summary()
        print(f"{method.name:8s} {s['box_checks']:11.0f} "
              f"{100 * s['ica_efficiency']:7.1f}% {s['sim_total_ms']:9.4f}")
        if reference is None:
            reference = r.collides
        assert np.array_equal(r.collides, reference), f"{method.name} diverged!"
    print("\nall five methods produced identical accessibility maps")

if __name__ == "__main__":
    main()
