"""Bench harness: config, rendering, runner, and experiment smoke runs."""

import numpy as np
import pytest

from repro.bench.config import SCALES, BenchScale, current_scale
from repro.bench.render import format_value, render_series, render_table
from repro.bench.runner import build_workload, clear_caches, run_workload
from repro.cd import AICA
from repro.geometry.orientation import OrientationGrid

SMOKE = SCALES["smoke"]


class TestConfig:
    def test_presets_exist(self):
        assert {"smoke", "small", "medium", "large"} <= set(SCALES)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        assert current_scale().name == "medium"

    def test_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "nope")
        with pytest.raises(KeyError):
            current_scale()

    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "small"

    def test_labels(self):
        assert SMOKE.resolution_labels == ["16^3", "32^3"]


class TestRender:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(3.14159) == "3.14"
        assert format_value("x") == "x"

    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bb"], [[1, 2.5], [300, None]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1  # fixed-width rows

    def test_render_table_notes(self):
        out = render_table("T", ["a"], [[1]], notes="hello")
        assert out.endswith("hello")

    def test_render_series(self):
        out = render_series("S", "x", [1, 2], {"m": [0.1, 0.2]})
        assert "m" in out and "0.1" in out


class TestRunner:
    def test_build_workload_by_name(self):
        wl = build_workload("head", 16, n_pivots=2, seed=1)
        assert wl.model.name == "head"
        assert wl.pivots.shape == (2, 3)
        assert wl.tree.resolution == 16

    def test_workload_cached(self):
        a = build_workload("head", 16, n_pivots=1)
        b = build_workload("head", 16, n_pivots=1)
        assert a.tree is b.tree
        assert a.path is b.path

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_workload("nope", 16)

    def test_run_workload_aggregates(self):
        wl = build_workload("head", 16, n_pivots=2, seed=0)
        out = run_workload(wl, AICA(), OrientationGrid.square(4))
        assert out["method"] == "AICA"
        assert out["n_pivots"] == 2
        assert out["sim_total_ms"] >= 0
        assert out["last_result"].method == "AICA"

    def test_clear_caches(self):
        build_workload("head", 16, n_pivots=1)
        clear_caches()
        # rebuild works after clearing
        wl = build_workload("head", 16, n_pivots=1)
        assert wl.tree.resolution == 16


@pytest.mark.parametrize(
    "name",
    [
        "table1",
        "table2",
        "fig05",
        "fig09",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "boxica",
        "am_overlap",
        "ablation_bvh",
        "ablation_costs",
        "ablation_mapping",
        "ablation_warp",
        "ablation_start_level",
    ],
)
def test_experiment_smoke(name):
    """Every experiment must run at smoke scale and render to text."""
    from repro.bench.experiments import ALL_EXPERIMENTS

    result = ALL_EXPERIMENTS[name](SMOKE)
    assert result.exp_id == name
    assert result.rows, f"{name} produced no rows"
    text = result.render()
    assert name in text
    assert len(text.splitlines()) >= 4


class TestExperimentContent:
    def test_fig16_ordering(self):
        from repro.bench.experiments import fig16

        r = fig16(SMOKE)
        sims = r.extras["sims"]
        res = SMOKE.resolutions[-1]
        assert sims[("AICA", res)] <= sims[("MICA", res)] * 1.001
        assert sims[("MICA", res)] <= sims[("PICA", res)]
        assert sims[("PICA", res)] < sims[("PBoxOpt", res)]
        assert sims[("PBoxOpt", res)] < sims[("PBox", res)]

    def test_fig17_speedup_positive(self):
        from repro.bench.experiments import fig17

        r = fig17(SMOKE)
        sims = r.extras["sims"]
        l = SMOKE.map_sizes[-1]
        assert sims[("PBox", l)] / sims[("AICA", l)] > 5.0

    def test_cli_list_and_run(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out
        assert main(["table2", "--scale", "smoke"]) == 0
        assert main(["bogus"]) == 2
