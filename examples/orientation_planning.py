#!/usr/bin/env python
"""Orientation planning on top of accessibility maps.

Computing the AM is only half of a 5-axis planner's job; this example
shows the downstream half using :mod:`repro.cd.ammaps`:

1. compute AMs at several pivots along the path (AICA);
2. apply a safety margin (erode the accessible set by one grid cell);
3. find the connected accessible regions at each pivot;
4. pick the most robust orientation (deepest inside the safe set);
5. intersect maps across the path to test whether one fixed orientation
   could machine every sampled point (3+2-axis feasibility).

Run:  python examples/orientation_planning.py
"""

import numpy as np

from repro import (
    AICA,
    OrientationGrid,
    Tool,
    build_from_sdf,
    expand_top,
    offset_path,
    sample_pivots,
)
from repro.cd import run_along_path
from repro.cd.ammaps import (
    best_orientation,
    connected_regions,
    dilate_blocked,
    merge_accessible,
)
from repro.solids import teapot_model

def main() -> None:
    model = teapot_model()
    resolution = 64
    tree = expand_top(build_from_sdf(model.sdf, model.domain, resolution))
    path = offset_path(model, resolution)
    pivots = sample_pivots(path, 5, seed=21)
    grid = OrientationGrid.square(16)

    # A small part at 1 mm standoff needs a slender finishing tool — the
    # paper's 31.5 mm-holder roughing tool blocks nearly everything here
    # (try it: that is the tool_design.py lesson).
    tool = Tool.from_segments(
        [(1.5, 20.0), (2.5, 60.0), (8.0, 40.0)], name="finishing"
    )
    run = run_along_path(tree, tool, pivots, grid, AICA())
    print(f"{model.name}: {len(pivots)} pivots, {grid.size} orientations each")
    print(f"mean AM overlap between consecutive pivots: "
          f"{100 * run.mean_overlap:.1f}%  (Section 8 reuse headroom)\n")

    safe_maps = []
    for i, result in enumerate(run.results):
        am = result.accessibility_map
        safe = dilate_blocked(am, steps=1)
        labels, n_regions = connected_regions(safe)
        line = (f"pivot {i}: accessible {am.sum():3d}/{grid.size}, "
                f"safe {safe.sum():3d}, regions {n_regions}")
        if safe.any():
            phi_i, gam_j = best_orientation(safe)
            phi = np.degrees(grid.phis()[phi_i])
            gam = np.degrees(grid.gammas()[gam_j])
            line += f", best orientation (phi={phi:5.1f} deg, gamma={gam:5.1f} deg)"
        print(line)
        safe_maps.append(safe)

    fixed = merge_accessible(safe_maps, "intersection")
    union = merge_accessible(safe_maps, "union")
    print(f"\nfixed-orientation feasibility: {fixed.sum()} orientation(s) safe at "
          f"every pivot")
    print(f"coverage: {union.sum()}/{grid.size} orientations usable somewhere")
    if fixed.any():
        i, j = best_orientation(fixed)
        print(f"recommended fixed orientation: phi={np.degrees(grid.phis()[i]):.1f} deg, "
              f"gamma={np.degrees(grid.gammas()[j]):.1f} deg "
              "(3+2-axis machining possible for these points)")
    else:
        print("no single orientation reaches all pivots: full 5-axis motion needed")

if __name__ == "__main__":
    main()
