"""Tool models: stacked bounding cylinders anchored at a pivot.

The paper replaces a fine-grained volumetric tool representation with a
small collection of bounding cylinders (Figure 1) sharing the tool axis.
This package provides the :class:`Tool` container, the paper's exact
4-cylinder evaluation tool, and the 2D generating profile the ICA
computation consumes.
"""

from repro.tool.tool import Tool, paper_tool, ball_end_mill, straight_line_tool

__all__ = ["Tool", "paper_tool", "ball_end_mill", "straight_line_tool"]
