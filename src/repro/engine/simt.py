"""SIMT kernel-time simulation.

Model
-----
A kernel launches one logical thread per work item with a known
elementary-op cost.  Threads are packed into warps of ``warp_size`` in
index order (consecutive orientations share a warp — the coherence the
orientation-per-thread mapping is chosen for); a warp's cost is the
*maximum* of its threads (lock-step divergence).  Warps are then
scheduled onto the device's warp slots with a longest-processing-time
greedy, and the kernel time is the makespan divided by the clock.

This reproduces the behaviours the paper calls out:

* maps smaller than the core count run in near-constant time (Fig 5
  right: flat below ``32^2``/``64^2``);
* the kernel is bounded by the *critical thread* (Fig 13/14);
* a higher clock wins latency-bound phases while more cores win
  throughput-bound ones (the 1080 vs 1080 Ti inversions in Fig 14).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.engine.device import DeviceSpec

__all__ = ["warp_costs", "makespan_cycles", "simulate_kernel", "simulate_stage"]


def warp_costs(thread_ops: np.ndarray, warp_size: int) -> np.ndarray:
    """Per-warp cycle costs: max over each consecutive ``warp_size`` group."""
    ops = np.asarray(thread_ops, dtype=np.float64)
    if ops.size == 0:
        return np.zeros(0)
    pad = (-ops.size) % warp_size
    if pad:
        ops = np.concatenate([ops, np.zeros(pad)])
    return ops.reshape(-1, warp_size).max(axis=1)


def makespan_cycles(warps: np.ndarray, slots: int) -> float:
    """LPT greedy makespan of warp costs over ``slots`` parallel slots.

    Exact greedy for moderate warp counts; for very large inputs the
    result converges to ``max(total/slots, max_warp)`` anyway, so the
    greedy is truncated: the heaviest warps are placed exactly and the
    (tiny) tail is spread evenly.
    """
    warps = np.asarray(warps, dtype=np.float64)
    if warps.size == 0:
        return 0.0
    if warps.size <= slots:
        return float(warps.max())
    order = np.sort(warps)[::-1]
    head = order[: max(slots * 64, 4096)]
    tail_total = float(order[head.size :].sum())
    loads = [0.0] * slots
    heapq.heapify(loads)
    for w in head:
        heapq.heappush(loads, heapq.heappop(loads) + float(w))
    # Spread the small remaining warps evenly (they are all lighter than
    # anything placed so far, so LPT would balance them near-perfectly).
    loads = [l + tail_total / slots for l in loads]
    return float(max(loads))


def simulate_kernel(thread_ops: np.ndarray, device: DeviceSpec) -> float:
    """Simulated seconds for one kernel launch of per-thread op costs."""
    w = warp_costs(thread_ops, device.warp_size)
    cycles = makespan_cycles(w, device.warp_slots)
    return cycles * device.seconds_per_op


def simulate_stage(
    uniform_ops: float, n_threads: int, device: DeviceSpec
) -> float:
    """Simulated seconds for a stage whose threads all cost the same.

    Used for the pleasingly parallel ICA precompute: ``n_threads`` voxels
    at ``uniform_ops`` each — no divergence, so the makespan closed form
    ``ceil(warps/slots) * ops`` is exact.
    """
    if n_threads == 0:
        return 0.0
    warps = -(-n_threads // device.warp_size)
    rounds = -(-warps // device.warp_slots)
    return rounds * uniform_ops * device.seconds_per_op
