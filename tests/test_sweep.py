"""Direction sets, slerp, and rotation-sweep checking."""

import numpy as np
import pytest

from repro.cd.sweep import check_rotation_sweep
from repro.geometry.orientation import (
    DirectionSet,
    direction_from_angles,
    slerp_directions,
)


class TestSlerp:
    def test_endpoints_and_unit(self):
        d0 = np.array([0.0, 0.0, 1.0])
        d1 = np.array([1.0, 0.0, 0.0])
        out = slerp_directions(d0, d1, 9)
        np.testing.assert_allclose(out[0], d0, atol=1e-12)
        np.testing.assert_allclose(out[-1], d1, atol=1e-12)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-12)

    def test_uniform_angular_spacing(self):
        d0 = np.array([0.0, 0.0, 1.0])
        d1 = np.array([0.0, 1.0, 0.0])
        out = slerp_directions(d0, d1, 10)
        angles = np.arccos(np.clip(np.einsum("ij,ij->i", out[:-1], out[1:]), -1, 1))
        np.testing.assert_allclose(angles, angles[0], rtol=1e-9)

    def test_identical_inputs(self):
        d = np.array([0.0, 1.0, 0.0])
        out = slerp_directions(d, d, 5)
        np.testing.assert_allclose(out, np.tile(d, (5, 1)))

    def test_antipodal_rejected(self):
        with pytest.raises(ValueError):
            slerp_directions([0, 0, 1.0], [0, 0, -1.0], 5)

    def test_too_few_steps(self):
        with pytest.raises(ValueError):
            slerp_directions([0, 0, 1.0], [1, 0, 0.0], 1)


class TestDirectionSet:
    def test_protocol(self):
        dirs = direction_from_angles(np.array([0.5, 1.0]), np.array([0.0, 2.0]))
        ds = DirectionSet(dirs)
        assert ds.size == 2
        assert ds.shape == (2, 1)
        np.testing.assert_array_equal(ds.directions(), dirs)
        out = ds.unflatten(np.array([True, False]))
        assert out.shape == (2, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            DirectionSet(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            DirectionSet(np.array([[2.0, 0.0, 0.0]]))  # not unit
        with pytest.raises(ValueError):
            DirectionSet(np.zeros((3,)))

    def test_run_cd_accepts_direction_set(self, sphere_scene):
        from repro.cd import AICA, run_cd

        up = np.array([0.0, 0.0, 1.0])
        down = np.array([0.0, 0.0, -1.0])
        side = np.array([1.0, 0.0, 0.0])
        r = run_cd(sphere_scene, DirectionSet(np.stack([up, down, side])), AICA())
        # pivot above the sphere pole: up free, down blocked
        assert not r.collides[0]
        assert r.collides[1]


class TestRotationSweep:
    def test_clear_sweep_above_pole(self, sphere_scene):
        """Rotating between two near-vertical orientations stays clear.

        The margin is tight by construction: the paper tool's 6.35 mm
        cutter at a 1 mm standoff only tolerates tilts below roughly
        arcsin(1/6.35) ~ 9 degrees, so the arc stays at phi ~ 2.9 deg.
        """
        d0 = direction_from_angles(0.05, 0.0)
        d1 = direction_from_angles(0.05, 2.0)
        res = check_rotation_sweep(sphere_scene, d0, d1, steps=12)
        assert res.clear
        assert res.first_blocked_step == -1
        assert res.first_blocked_t == -1.0
        assert res.blocked_fraction == 0.0

    def test_blocked_sweep_through_part(self, sphere_scene):
        """Sweeping from skyward to sideways passes near-tangent
        orientations that hit the sphere."""
        d0 = direction_from_angles(0.1, 0.0)
        d1 = direction_from_angles(np.pi * 0.75, 0.0)
        res = check_rotation_sweep(sphere_scene, d0, d1, steps=16)
        assert not res.clear
        assert 0 <= res.first_blocked_step < 16
        assert 0.0 < res.blocked_fraction <= 1.0
        assert 0.0 <= res.first_blocked_t <= 1.0

    def test_endpoint_blocked_counts(self, sphere_scene):
        d_block = np.array([0.0, 0.0, -1.0])
        d_free = np.array([0.0, 0.0, 1.0])
        # antipodal is rejected; tilt the free one slightly
        d_free = direction_from_angles(0.05, 0.0)
        res = check_rotation_sweep(sphere_scene, d_block, d_free, steps=8)
        assert not res.clear
        assert res.first_blocked_step == 0

    def test_methods_agree_on_sweep(self, sphere_scene):
        from repro.cd import MICA, PBoxOpt

        d0 = direction_from_angles(0.4, 1.0)
        d1 = direction_from_angles(1.4, 4.0)
        a = check_rotation_sweep(sphere_scene, d0, d1, steps=10, method=MICA())
        b = check_rotation_sweep(sphere_scene, d0, d1, steps=10, method=PBoxOpt())
        assert a.clear == b.clear
        assert a.first_blocked_step == b.first_blocked_step
