"""OTLP-JSON trace export and a strict validating parser.

Perfetto answers "show me this run"; OTLP answers "ship this trace to
the tracing backend every other service already reports to".  This
module renders any finished trace — a live
:class:`~repro.obs.trace.Tracer`, a saved run report, or a raw span
list — as the OTLP/JSON wire form (the protobuf JSON mapping of
``ExportTraceServiceRequest``: ResourceSpans → ScopeSpans → Spans),
which Jaeger, Tempo, and any OpenTelemetry collector ingest on
``POST /v1/traces``.

No collector is required anywhere in this repo: :func:`validate_otlp`
is a strict structural parser (hex ID shapes, time ordering, attribute
typing, parent-link resolvability) that the tests and CI run against
every export, so the payloads are known-good before one ever leaves the
machine.

Spans written before the identity era (no ``trace_id``/``span_id``
fields) still export: IDs are minted deterministically from the span's
position, preserving the index-based parent links, so ``repro-obs
export --format otlp`` works on any historical report.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "to_otlp",
    "otlp_json",
    "validate_otlp",
    "otlp_spans",
]

_SPAN_KIND_INTERNAL = 1
_STATUS_UNSET = 0
_STATUS_ERROR = 2
_SCOPE = {"name": "repro.obs", "version": "1"}


def _spans_of(trace_or_spans) -> tuple[list[dict], int]:
    """``(span dicts, epoch_ns)`` from a Tracer, RunReport, or raw list."""
    if hasattr(trace_or_spans, "to_dicts"):  # Tracer
        return trace_or_spans.to_dicts(), int(getattr(trace_or_spans, "epoch_ns", 0))
    if hasattr(trace_or_spans, "spans"):  # RunReport
        meta = getattr(trace_or_spans, "meta", {}) or {}
        return list(trace_or_spans.spans), int(meta.get("trace_epoch_ns") or 0)
    return list(trace_or_spans), 0


def _derived_id(seed: str, nbytes: int) -> str:
    """A deterministic non-zero hex ID for spans predating explicit IDs."""
    digest = hashlib.blake2b(seed.encode("utf-8"), digest_size=nbytes).hexdigest()
    return digest if set(digest) != {"0"} else "1" * (2 * nbytes)


def _anyvalue(value) -> dict:
    """One attribute value in the protobuf-JSON ``AnyValue`` encoding."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # 64-bit ints are strings in proto-JSON
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, str):
        return {"stringValue": value}
    if isinstance(value, (list, tuple)):
        return {"arrayValue": {"values": [_anyvalue(v) for v in value]}}
    if isinstance(value, dict):
        return {
            "kvlistValue": {
                "values": [
                    {"key": str(k), "value": _anyvalue(v)} for k, v in value.items()
                ]
            }
        }
    return {"stringValue": str(value)}


def _attributes(attrs: dict) -> list[dict]:
    return [{"key": str(k), "value": _anyvalue(v)} for k, v in attrs.items()]


def to_otlp(
    trace_or_spans,
    *,
    service_name: str = "repro",
    label: str = "repro",
    epoch_ns: int | None = None,
) -> dict:
    """The trace as an OTLP/JSON ``ExportTraceServiceRequest`` document.

    ``epoch_ns`` anchors span ``t0`` offsets on the wall clock (taken
    from the tracer / the report's ``meta.trace_epoch_ns`` when not
    given; raw span lists with no anchor start at zero — structurally
    valid, just not absolute).  Span attributes become OTLP attributes,
    an ``error`` attribute becomes an ERROR status, and CPU time rides
    along as a ``cpu_ms`` attribute (OTLP spans have no CPU field).
    """
    spans, anchored = _spans_of(trace_or_spans)
    epoch = int(epoch_ns) if epoch_ns is not None else anchored

    # Resolve identity first: explicit IDs verbatim, minted ones for
    # legacy records — parent links follow the index tree either way.
    trace_ids: list[str] = []
    span_ids: list[str] = []
    default_trace = None
    for i, s in enumerate(spans):
        if s.get("trace_id"):
            trace_ids.append(s["trace_id"])
        else:
            if default_trace is None:
                default_trace = _derived_id(f"{label}/trace/{epoch}", 16)
            trace_ids.append(default_trace)
        span_ids.append(s.get("span_id") or _derived_id(f"{label}/span/{epoch}/{i}", 8))

    otlp_spans_out: list[dict] = []
    for i, s in enumerate(spans):
        parent = s.get("parent", -1)
        if s.get("parent_span_id"):
            parent_span_id = s["parent_span_id"]
        elif parent >= 0:
            parent_span_id = span_ids[parent]
        else:
            parent_span_id = ""
        start_ns = epoch + int(round(float(s["t0"]) * 1e9))
        end_ns = start_ns + max(0, int(round(float(s.get("wall_s", 0.0)) * 1e9)))
        attrs = dict(s.get("attrs", {}))
        cpu_s = float(s.get("cpu_s", 0.0) or 0.0)
        if cpu_s and "cpu_ms" not in attrs:
            attrs["cpu_ms"] = cpu_s * 1e3
        error = attrs.get("error")
        span = {
            "traceId": trace_ids[i],
            "spanId": span_ids[i],
            "name": str(s["name"]),
            "kind": _SPAN_KIND_INTERNAL,
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": _attributes(attrs),
            "status": (
                {"code": _STATUS_ERROR, "message": str(error)}
                if error
                else {"code": _STATUS_UNSET}
            ),
        }
        if parent_span_id:
            span["parentSpanId"] = parent_span_id
        otlp_spans_out.append(span)

    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _attributes(
                        {"service.name": service_name, "repro.label": label}
                    )
                },
                "scopeSpans": [{"scope": dict(_SCOPE), "spans": otlp_spans_out}],
            }
        ]
    }


def otlp_json(trace_or_spans, *, indent=None, **kwargs) -> str:
    """:func:`to_otlp`, serialized (NumPy-safe via the report encoder)."""
    from repro.obs.report import _json_default

    return json.dumps(
        to_otlp(trace_or_spans, **kwargs), default=_json_default, indent=indent
    )


# ---------------------------------------------------------------------------
# Strict validation
# ---------------------------------------------------------------------------

_HEX = set("0123456789abcdef")
_VALUE_KEYS = {
    "stringValue",
    "boolValue",
    "intValue",
    "doubleValue",
    "arrayValue",
    "kvlistValue",
    "bytesValue",
}


def _is_hex_id(value, nbytes: int) -> bool:
    return (
        isinstance(value, str)
        and len(value) == 2 * nbytes
        and set(value) <= _HEX
        and set(value) != {"0"}
    )


def _check_attributes(attrs, where: str, problems: list[str]) -> None:
    if not isinstance(attrs, list):
        problems.append(f"{where}: attributes must be a list")
        return
    for j, kv in enumerate(attrs):
        if not isinstance(kv, dict) or "key" not in kv or "value" not in kv:
            problems.append(f"{where}: attribute [{j}] needs 'key' and 'value'")
            continue
        if not isinstance(kv["key"], str) or not kv["key"]:
            problems.append(f"{where}: attribute [{j}] key must be a non-empty string")
        value = kv["value"]
        if not isinstance(value, dict) or len(set(value) & _VALUE_KEYS) != 1:
            problems.append(
                f"{where}: attribute {kv.get('key')!r} value must carry exactly "
                f"one of {sorted(_VALUE_KEYS)}"
            )
        elif "intValue" in value and not isinstance(value["intValue"], str):
            problems.append(
                f"{where}: attribute {kv.get('key')!r} intValue must be a string "
                "(proto-JSON int64)"
            )


def otlp_spans(doc: dict) -> list[dict]:
    """Flatten every span out of an OTLP/JSON document (no validation)."""
    out: list[dict] = []
    for rs in doc.get("resourceSpans", []) or []:
        for ss in rs.get("scopeSpans", []) or []:
            out.extend(ss.get("spans", []) or [])
    return out


def validate_otlp(doc, *, allow_unresolved_parents=()) -> list[str]:
    """Strictly validate an OTLP/JSON trace document.

    Returns a list of human-readable problems — empty means the payload
    is structurally valid OTLP: correct nesting, 16/8-byte lowercase-hex
    non-zero trace/span IDs, unique span IDs, ``start <= end``, typed
    attributes, status codes in range, and every ``parentSpanId``
    resolving to a span of the *same trace* inside the payload.

    ``allow_unresolved_parents`` whitelists span IDs that legitimately
    live outside the payload — the remote parent carried in by an
    inbound ``traceparent`` header, whose span belongs to the caller.
    """
    problems: list[str] = []
    allowed = set(allow_unresolved_parents)
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    rspans = doc.get("resourceSpans")
    if not isinstance(rspans, list) or not rspans:
        return ["document needs a non-empty 'resourceSpans' list"]

    flat: list[dict] = []
    for r, rs in enumerate(rspans):
        where = f"resourceSpans[{r}]"
        if not isinstance(rs, dict):
            problems.append(f"{where}: must be an object")
            continue
        resource = rs.get("resource")
        if not isinstance(resource, dict):
            problems.append(f"{where}: needs a 'resource' object")
        else:
            _check_attributes(
                resource.get("attributes", []), f"{where}.resource", problems
            )
        sspans = rs.get("scopeSpans")
        if not isinstance(sspans, list) or not sspans:
            problems.append(f"{where}: needs a non-empty 'scopeSpans' list")
            continue
        for c, ss in enumerate(sspans):
            swhere = f"{where}.scopeSpans[{c}]"
            if not isinstance(ss, dict):
                problems.append(f"{swhere}: must be an object")
                continue
            scope = ss.get("scope")
            if not isinstance(scope, dict) or not scope.get("name"):
                problems.append(f"{swhere}: needs a named 'scope'")
            spans = ss.get("spans")
            if not isinstance(spans, list):
                problems.append(f"{swhere}: needs a 'spans' list")
                continue
            flat.extend(s for s in spans if isinstance(s, dict))
            for k, s in enumerate(spans):
                if not isinstance(s, dict):
                    problems.append(f"{swhere}.spans[{k}]: must be an object")

    by_id: dict[str, dict] = {}
    for k, s in enumerate(flat):
        where = f"span[{k}] ({s.get('name', '?')!r})"
        for key in ("traceId", "spanId", "name", "startTimeUnixNano", "endTimeUnixNano"):
            if key not in s:
                problems.append(f"{where}: missing required field {key!r}")
        if "traceId" in s and not _is_hex_id(s["traceId"], 16):
            problems.append(
                f"{where}: traceId must be 32 non-zero lowercase hex chars, "
                f"got {s['traceId']!r}"
            )
        if "spanId" in s and not _is_hex_id(s["spanId"], 8):
            problems.append(
                f"{where}: spanId must be 16 non-zero lowercase hex chars, "
                f"got {s['spanId']!r}"
            )
        if "parentSpanId" in s and not _is_hex_id(s["parentSpanId"], 8):
            problems.append(f"{where}: malformed parentSpanId {s['parentSpanId']!r}")
        try:
            start = int(s.get("startTimeUnixNano", 0))
            end = int(s.get("endTimeUnixNano", 0))
            if end < start:
                problems.append(f"{where}: endTimeUnixNano precedes start")
        except (TypeError, ValueError):
            problems.append(f"{where}: time fields must be integer nanoseconds")
        kind = s.get("kind", _SPAN_KIND_INTERNAL)
        if not isinstance(kind, int) or not 0 <= kind <= 5:
            problems.append(f"{where}: kind must be an int in [0, 5]")
        _check_attributes(s.get("attributes", []), where, problems)
        status = s.get("status", {})
        if not isinstance(status, dict) or status.get("code", 0) not in (0, 1, 2):
            problems.append(f"{where}: status code must be 0 (unset), 1 (ok) or 2 (error)")
        sid = s.get("spanId")
        if isinstance(sid, str):
            if sid in by_id:
                problems.append(f"{where}: duplicate spanId {sid}")
            else:
                by_id[sid] = s

    for k, s in enumerate(flat):
        parent = s.get("parentSpanId")
        if not parent or parent in allowed:
            continue
        target = by_id.get(parent)
        if target is None:
            problems.append(
                f"span[{k}] ({s.get('name', '?')!r}): parentSpanId {parent} "
                "resolves to no span in the payload"
            )
        elif target.get("traceId") != s.get("traceId"):
            problems.append(
                f"span[{k}] ({s.get('name', '?')!r}): parent {parent} belongs "
                "to a different trace"
            )
    return problems
