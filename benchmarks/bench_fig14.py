"""Figure 14: load imbalance and the parallel ICA precompute, both GPUs."""

from repro.bench.experiments import fig14


def test_fig14(benchmark, scale, record):
    result = benchmark.pedantic(fig14, args=(scale,), rounds=1, iterations=1)
    record(result)

    rows = {(r[0], r[1]): r for r in result.rows}
    for dev in ("GTX 1080 Ti", "GTX 1080"):
        pica = rows[(dev, "PICA")]
        mica = rows[(dev, "MICA")]
        aica = rows[(dev, "AICA")]
        # The precompute stage exists only for MICA/AICA...
        assert pica[2] == 0.0
        assert mica[2] > 0.0
        # ...and it pays for itself: total time improves (or ties).
        assert mica[4] <= pica[4] * 1.001
        assert aica[4] <= mica[4] * 1.01
        # Imbalance (max/mean thread ops) should not explode after memoization.
        assert mica[5] < 50.0
