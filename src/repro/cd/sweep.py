"""Rotation-sweep checking between accessibility-map cells.

An accessibility map certifies *discrete* orientations; the machine
physically rotates the tool between them, and every intermediate
orientation must also be collision-free.  :func:`check_rotation_sweep`
samples the great-circle arc between two directions at (at least) the
map's angular resolution and runs the exact CD machinery on the samples
— the discrete analogue of a continuous collision check for pure
rotations about a fixed pivot.

This is conservative in the sampling sense (a collision thinner than the
sampling step can hide between samples); callers pick ``steps`` from
their confidence in the map resolution, exactly as they already do for
the AM itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cd.scene import Scene
from repro.cd.traversal import TraversalConfig, run_cd
from repro.engine.costs import CostModel, DEFAULT_COSTS
from repro.engine.device import DeviceSpec, GTX_1080_TI
from repro.geometry.orientation import DirectionSet, slerp_directions

__all__ = ["SweepResult", "check_rotation_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one rotation sweep check."""

    clear: bool
    steps: int
    first_blocked_step: int  # -1 when clear
    blocked_fraction: float

    @property
    def first_blocked_t(self) -> float:
        """Arc parameter in [0, 1] of the first blocked sample (-1 if clear)."""
        if self.first_blocked_step < 0:
            return -1.0
        return self.first_blocked_step / max(self.steps - 1, 1)


def check_rotation_sweep(
    scene: Scene,
    d0,
    d1,
    *,
    steps: int = 16,
    method=None,
    device: DeviceSpec = GTX_1080_TI,
    costs: CostModel = DEFAULT_COSTS,
    config: TraversalConfig = TraversalConfig(),
) -> SweepResult:
    """Is the great-circle rotation from ``d0`` to ``d1`` collision-free?

    ``method`` defaults to AICA.  Both endpoints are included in the
    sampled arc, so a sweep from/to a blocked orientation reports blocked.
    """
    if method is None:
        from repro.cd.methods import AICA

        method = AICA()
    dirs = slerp_directions(d0, d1, steps)
    result = run_cd(
        scene, DirectionSet(dirs), method, device=device, costs=costs, config=config
    )
    collides = result.collides
    blocked = np.nonzero(collides)[0]
    return SweepResult(
        clear=not collides.any(),
        steps=steps,
        first_blocked_step=int(blocked[0]) if len(blocked) else -1,
        blocked_fraction=float(collides.mean()),
    )
