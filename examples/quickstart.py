#!/usr/bin/env python
"""Quickstart: accessibility map of a sphere with the paper's tool.

Builds the smallest meaningful CD problem end to end:

1. define a target solid (a 20 mm sphere) as an implicit function;
2. voxelize it into an adaptive octree (64^3 effective resolution) and
   apply the paper's top-level expansion;
3. place the 4-cylinder evaluation tool's pivot 1 mm above the north
   pole;
4. run AICA over a 16x16 orientation grid and print the accessibility
   map plus the instrumentation every figure of the paper is built from.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AICA,
    OrientationGrid,
    Scene,
    build_from_sdf,
    expand_top,
    paper_tool,
    run_cd,
)
from repro.geometry import AABB
from repro.solids import SphereSDF

def main() -> None:
    # -- 1. the target: a sphere of radius 20 mm at the origin -------------
    target = SphereSDF(center=(0.0, 0.0, 0.0), radius=20.0)
    domain = AABB((-40.0, -40.0, -40.0), (40.0, 40.0, 40.0))

    # -- 2. adaptive octree at 64^3, with the top 5 levels expanded --------
    tree = expand_top(build_from_sdf(target, domain, resolution=64))
    print(f"octree: {tree.total_nodes} nodes, leaf resolution {tree.resolution}^3")

    # -- 3. tool pivot 1 mm above the north pole ---------------------------
    scene = Scene(tree=tree, tool=paper_tool(), pivot=np.array([0.0, 0.0, 21.0]))

    # -- 4. the accessibility map ------------------------------------------
    grid = OrientationGrid.square(16)
    result = run_cd(scene, grid, AICA())

    print(f"\naccessibility map ({grid.m}x{grid.n}; '.' accessible, '#' collision):")
    print(result.render_ascii())

    s = result.summary()
    print(f"\naccessible orientations : {result.n_accessible}/{grid.size}")
    print(f"CD tests executed       : {s['total_checks']:.0f}")
    print(f"exact CHECKBOX fallbacks: {s['box_checks']:.0f}")
    print(f"ICA efficiency          : {100 * s['ica_efficiency']:.2f}%")
    print(f"simulated GPU time      : {s['sim_total_ms']:.4f} ms ({result.device_name})")
    print(f"wall time (NumPy)       : {s['wall_ms']:.1f} ms")

    # Sanity: pointing straight down into the sphere must collide, and
    # pointing straight up away from it must be accessible.
    phi, gamma = grid.angles()
    down = np.argmax(np.cos(phi.ravel()) < -0.99)
    assert result.collides[down], "tool aimed into the sphere should collide"
    assert result.n_accessible > 0, "some orientations should be accessible"
    print("\nsanity checks passed")

if __name__ == "__main__":
    main()
