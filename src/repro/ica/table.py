"""The memoized ICA table — stage 1 of the parallel AICA algorithm.

For one pivot point, stage 1 computes ``(ica1, ica2)`` for every stored
octree node on the top ``S`` levels (Section 4.2): ``ica1`` is the sound
collision bound of the node's *inscribed* sphere, ``ica2`` the sound
freedom bound of its *circumscribed* sphere.  Both depend only on the
node's center distance to the pivot and its size — not on any tool
orientation — which is what makes the precomputation valid for all
threads of stage 2 and pleasingly parallel at voxel granularity.

The table's simulated cost model (one GPU thread per voxel, ``10 * N_c``
operations each) is charged by :mod:`repro.engine`; this module just
computes the values and exposes per-level lookup arrays for the
traversal to gather from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ica.cone import ica_bounds_cos
from repro.obs.trace import get_tracer
from repro.octree.linear import LinearOctree
from repro.tool.tool import Tool

__all__ = ["IcaTable", "build_ica_table", "SQRT3"]

SQRT3 = float(np.sqrt(3.0))


@dataclass
class IcaTable:
    """Per-level memoized ICA values for a fixed (tree, tool, pivot).

    Values are stored in *cosine space* (``cos1 = cos(ica1)`` of the
    inscribed sphere, ``cos2 = cos(ica2)`` of the circumscribed sphere,
    with the :data:`repro.ica.cone.COS_NEVER` sentinel), because the CD
    stage compares them against dot-product cosines directly — the
    angle itself is never needed.

    ``cos1[l]`` / ``cos2[l]`` align index-for-index with
    ``tree.levels[l].codes`` for every level ``l < len(cos1)``; deeper
    levels are not memoized and must be computed on the fly (that is the
    ``S`` trade-off Figure 18 sweeps).
    """

    pivot: np.ndarray
    levels: int  # the paper's S: number of memoized top levels
    cos1: list[np.ndarray]
    cos2: list[np.ndarray]
    n_entries: int

    def has_level(self, level: int) -> bool:
        return level < self.levels and level < len(self.cos1)

    def lookup(self, level: int, index: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather memoized ``(cos1, cos2)`` for stored-node indices at a level."""
        if not self.has_level(level):
            raise KeyError(f"level {level} is not memoized (S={self.levels})")
        return self.cos1[level][index], self.cos2[level][index]


def build_ica_table(
    tree: LinearOctree, tool: Tool, pivot, *, levels: int | None = None
) -> IcaTable:
    """Compute the memoized table for the top ``levels`` octree levels.

    ``levels`` defaults to the paper's ``S = 8`` — the same default as
    ``TraversalConfig.memo_levels`` — capped at the tree's level count
    (``depth + 1``): levels ``0 .. S-1`` are memoized.  The computation
    is one vectorized :func:`tool_ica_batch` call per level — the direct
    analogue of the one-thread-per-voxel GPU kernel.
    """
    pivot = np.asarray(pivot, dtype=np.float64)
    if levels is None:
        levels = 8
    levels = int(min(levels, tree.depth + 1))

    with get_tracer().span("ica.table.build", levels=levels) as sp:
        cos1: list[np.ndarray] = []
        cos2: list[np.ndarray] = []
        n = 0
        for l in range(levels):
            lev = tree.levels[l]
            if lev.n == 0:
                cos1.append(np.zeros(0))
                cos2.append(np.zeros(0))
                continue
            centers = tree.centers(l)
            dist = np.linalg.norm(centers - pivot, axis=-1)
            half = tree.cell_half(l)
            lo, _ = ica_bounds_cos(tool.z0, tool.z1, tool.radius, dist, np.full(lev.n, half))
            _, hi = ica_bounds_cos(
                tool.z0, tool.z1, tool.radius, dist, np.full(lev.n, SQRT3 * half)
            )
            cos1.append(lo)
            cos2.append(hi)
            n += lev.n
        sp.set(n_entries=n)
    return IcaTable(pivot=pivot, levels=levels, cos1=cos1, cos2=cos2, n_entries=n)
